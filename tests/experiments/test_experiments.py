"""Smoke tests for the experiment harness (runs at SMOKE_SCALE)."""

import pytest

from repro.experiments import (
    EXPERIMENTS,
    SMOKE_SCALE,
    format_fig3,
    format_fig9,
    format_fig10,
    format_fig11,
    format_fig12,
    format_fig13,
    format_table1,
    run_experiment,
    run_fig3,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig13,
    run_table1,
)
from repro.experiments.common import make_config, make_world, run_scheme, scheme_factory


class TestCommonHelpers:
    def test_make_config_uses_scale(self):
        config = make_config(SMOKE_SCALE, communication_range=50.0, sensing_range=30.0)
        assert config.sensor_count == SMOKE_SCALE.sensor_count
        assert config.duration == SMOKE_SCALE.duration
        assert config.communication_range == 50.0

    def test_make_world_clusters_sensors(self):
        config = make_config(SMOKE_SCALE)
        world = make_world(config, SMOKE_SCALE)
        for sensor in world.sensors:
            assert sensor.position.x <= SMOKE_SCALE.field_size / 2.0 + 1e-9
            assert sensor.position.y <= SMOKE_SCALE.field_size / 2.0 + 1e-9

    def test_scheme_factory_names(self):
        config = make_config(SMOKE_SCALE)
        assert scheme_factory("CPVF", config)().name == "CPVF"
        assert scheme_factory("floor", config)().name == "FLOOR"
        with pytest.raises(ValueError):
            scheme_factory("unknown", config)

    def test_run_scheme_returns_result_with_world(self):
        result = run_scheme("CPVF", SMOKE_SCALE, seed=3)
        assert result.world is not None
        assert 0.0 <= result.final_coverage <= 1.0

    def test_scaled_count(self):
        assert SMOKE_SCALE.scaled_count(240) == SMOKE_SCALE.sensor_count


class TestFig3AndFig8:
    def test_fig3_rows(self):
        rows = run_fig3(SMOKE_SCALE, seed=2)
        assert [r.scenario for r in rows] == ["a", "b", "c"]
        assert all(0.0 <= r.coverage <= 1.0 for r in rows)
        report = format_fig3(rows)
        assert "Figure 3" in report

    def test_fig8_rows_use_floor_paper_values(self):
        rows = run_fig8(SMOKE_SCALE, seed=2)
        assert rows[0].paper_coverage == pytest.approx(0.788)
        assert all(0.0 <= r.coverage <= 1.0 for r in rows)


class TestSweeps:
    def test_fig9_structure(self):
        rows = run_fig9(
            SMOKE_SCALE,
            sensor_counts=[120],
            range_pairs=[(60.0, 40.0)],
            seed=2,
        )
        schemes = {r.scheme for r in rows}
        assert schemes == {"CPVF", "FLOOR", "OPT"}
        assert "Figure 9" in format_fig9(rows)

    def test_fig10_structure(self):
        rows = run_fig10(SMOKE_SCALE, ratios=[1.0, 3.0], vd_rounds=3, seed=2)
        schemes = {r.scheme for r in rows}
        assert schemes == {"FLOOR", "VOR", "Minimax"}
        # The connectivity flag should improve (or stay) as rc/rs grows.
        vor_small = next(r for r in rows if r.scheme == "VOR" and r.ratio == 1.0)
        vor_large = next(r for r in rows if r.scheme == "VOR" and r.ratio == 3.0)
        assert vor_large.coverage >= 0.0 and vor_small.coverage >= 0.0
        assert "Figure 10" in format_fig10(rows)

    def test_fig11_contains_all_six_schemes(self):
        rows = run_fig11(SMOKE_SCALE, vd_rounds=2, seed=2)
        names = {r.scheme for r in rows}
        assert names == {
            "CPVF",
            "FLOOR",
            "VOR",
            "Minimax",
            "OPT-Hungarian",
            "FLOOR-Hungarian",
        }
        assert all(r.average_moving_distance >= 0.0 for r in rows)
        assert "Figure 11" in format_fig11(rows)

    def test_fig12_sweep(self):
        rows = run_fig12(SMOKE_SCALE, deltas=[None, 2.0], modes=["one-step"], seed=2)
        assert len(rows) == 2
        damped = next(r for r in rows if r.delta == 2.0)
        plain = next(r for r in rows if r.delta is None)
        assert damped.average_moving_distance <= plain.average_moving_distance + 1e-6
        assert "Figure 12" in format_fig12(rows)

    def test_fig13_summary(self):
        summary = run_fig13(SMOKE_SCALE, repetitions=1, seed=2)
        assert len(summary.runs) == 2
        assert summary.mean_coverage("FLOOR") >= 0.0
        assert summary.coverage_cdf("CPVF").values
        assert "Figure 13" in format_fig13(summary, cdf_points=3)

    def test_table1_rows(self):
        rows = run_table1(
            SMOKE_SCALE,
            sensor_counts=[120],
            ttl_fractions=[0.1, 0.3],
            environments=["non-obstacle"],
            seed=2,
        )
        assert len(rows) == 2
        low = next(r for r in rows if r.ttl_fraction == 0.1)
        high = next(r for r in rows if r.ttl_fraction == 0.3)
        assert high.total_messages >= low.total_messages
        assert "Table 1" in format_table1(rows)


class TestRunner:
    def test_experiment_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "fig3",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "table1",
            "gallery",
            "lifecycle",
            "degradation",
        }

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("fig99", SMOKE_SCALE)
