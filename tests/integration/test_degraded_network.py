"""End-to-end contracts of the unreliable-network backend.

Three layers of protection:

* the **structural-mode identity** — runs without a network spec pin the
  exact coverage and message counts the seed produced, so the hardening
  hooks provably compile down to the old code path by default;
* the **degenerate parity** — an ``UnreliableNetwork`` with all knobs at
  zero must trace identically to the perfect network, draw for draw;
* the **degradation acceptance** — at 10% loss both paper schemes retain
  at least 85% of their perfect-network coverage and surface the
  timeout/retry counters through profiled telemetry.
"""

import pytest

from repro.api import NetworkSpec, RunSpec, execute_run
from repro.experiments import SMOKE_SCALE, make_scenario


def trajectory(record):
    return [
        (point.time, point.coverage, point.total_messages)
        for point in record.trace
    ]


class TestStructuralIdentity:
    """Pinned seed behavior: these numbers predate the network backend.

    If either value moves, a default-path run changed — the pluggable
    backend leaked into structural mode.  Regenerate only for a change
    that deliberately alters the paper reproduction itself.
    """

    @pytest.mark.parametrize(
        "scheme,coverage,total_messages",
        [("CPVF", 0.81, 7136), ("FLOOR", 0.49, 4807)],
    )
    def test_pinned_snapshot(self, scheme, coverage, total_messages):
        scenario = make_scenario(SMOKE_SCALE, seed=1)
        record = execute_run(RunSpec(scenario=scenario, scheme=scheme))
        assert record.coverage == pytest.approx(coverage, abs=1e-9)
        assert record.total_messages == total_messages


class TestDegenerateParity:
    @pytest.mark.parametrize("scheme", ["CPVF", "FLOOR"])
    def test_zero_knob_unreliable_equals_perfect(self, scheme):
        scenario = make_scenario(SMOKE_SCALE, seed=7)
        base = execute_run(
            RunSpec(scenario=scenario, scheme=scheme, trace_every=5)
        )
        degenerate = execute_run(
            RunSpec(
                scenario=scenario,
                scheme=scheme,
                trace_every=5,
                network=NetworkSpec(
                    model="unreliable", loss=0.0, latency=0, staleness=0
                ),
            )
        )
        assert trajectory(degenerate) == trajectory(base)
        assert degenerate.coverage == base.coverage
        assert degenerate.total_messages == base.total_messages


class TestDegradationAcceptance:
    @pytest.mark.parametrize("scheme", ["CPVF", "FLOOR"])
    def test_ten_percent_loss_retains_85_percent_coverage(self, scheme):
        scenario = make_scenario(SMOKE_SCALE, seed=1)
        perfect = execute_run(RunSpec(scenario=scenario, scheme=scheme))
        degraded = execute_run(
            RunSpec(
                scenario=scenario,
                scheme=scheme,
                network=NetworkSpec(model="unreliable", loss=0.1),
                profile=True,
            )
        )
        assert degraded.coverage >= 0.85 * perfect.coverage
        counters = degraded.telemetry.counters
        # The loss model engaged and its accounting reached telemetry.
        assert counters["net.dropped"] > 0
        assert counters["net.retries"] > 0
        # Retransmissions are charged: lossy runs never send fewer
        # connectivity-flood messages than the perfect run.
        assert counters["messages.total"] == degraded.total_messages

    def test_degraded_runs_are_reproducible(self):
        scenario = make_scenario(SMOKE_SCALE, seed=3)
        spec = RunSpec(
            scenario=scenario,
            scheme="CPVF",
            network=NetworkSpec(model="unreliable", loss=0.1, staleness=5),
        )
        assert execute_run(spec) == execute_run(spec)

    def test_latency_defers_but_does_not_wedge(self):
        scenario = make_scenario(SMOKE_SCALE, seed=3)
        record = execute_run(
            RunSpec(
                scenario=scenario,
                scheme="FLOOR",
                network=NetworkSpec(model="unreliable", latency=2),
                profile=True,
            )
        )
        assert record.coverage > 0.0
        assert record.telemetry.counters["net.delayed"] > 0
