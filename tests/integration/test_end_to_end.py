"""End-to-end integration tests exercising the public API as a user would."""

import pytest

import repro
from repro import (
    CPVFScheme,
    FloorScheme,
    SimulationConfig,
    SimulationEngine,
    World,
    corridor_field,
    obstacle_free_field,
    two_obstacle_field,
)
from repro.metrics import summarize_sensor_distances
from repro.viz import render_layout


def small_config(**overrides):
    defaults = dict(
        sensor_count=20,
        duration=60.0,
        communication_range=60.0,
        sensing_range=40.0,
        coverage_resolution=15.0,
        seed=11,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestPublicAPI:
    def test_version_exposed(self):
        assert repro.__version__

    def test_quickstart_flow(self):
        config = small_config()
        world = World.create(config, obstacle_free_field(300.0))
        result = SimulationEngine(world, FloorScheme()).run()
        assert 0.0 < result.final_coverage <= 1.0
        summary = summarize_sensor_distances(world.sensors)
        assert summary.count == 20
        art = render_layout(world.field, world.positions(), config.sensing_range, width=30)
        assert art

    def test_both_schemes_run_on_every_canonical_field(self):
        for field_factory in (obstacle_free_field, two_obstacle_field, corridor_field):
            field = field_factory(300.0)
            for scheme_factory in (CPVFScheme, FloorScheme):
                config = small_config(seed=7)
                world = World.create(config, field)
                result = SimulationEngine(world, scheme_factory()).run()
                assert 0.0 <= result.final_coverage <= 1.0
                assert all(field.is_free(s.position) for s in world.sensors)

    def test_deterministic_given_seed(self):
        def run_once():
            config = small_config(seed=21)
            world = World.create(config, obstacle_free_field(300.0))
            result = SimulationEngine(world, FloorScheme()).run()
            return result.final_coverage, result.average_moving_distance

        assert run_once() == run_once()

    def test_different_seeds_differ(self):
        coverages = set()
        for seed in (1, 2, 3):
            config = small_config(seed=seed)
            world = World.create(config, obstacle_free_field(300.0))
            result = SimulationEngine(world, CPVFScheme()).run()
            coverages.add(round(result.final_coverage, 6))
        assert len(coverages) > 1

    def test_cpvf_preserves_connectivity_once_connected(self):
        config = small_config(seed=5, duration=80.0)
        world = World.create(config, obstacle_free_field(300.0))
        scheme = CPVFScheme()
        scheme.initialize(world)
        was_connected = False
        for period in range(world.config.max_periods):
            world.period_index = period
            scheme.step(world)
            if world.network_is_connected():
                was_connected = True
            elif was_connected:
                pytest.fail("CPVF lost connectivity after achieving it")
        assert was_connected
