"""Tests for the procedural field-layout generators."""

import pytest

from repro.scenarios import (
    ScenarioValidator,
    clutter_field,
    maze_field,
    rooms_field,
    spiral_field,
)

SIZE = 320.0


def obstacle_signature(field):
    return tuple(
        tuple((v.x, v.y) for v in ob.polygon.vertices) for ob in field.obstacles
    )


class TestMaze:
    def test_maze_is_valid_and_walled(self):
        field = maze_field(SIZE, seed=7, cells=4)
        assert ScenarioValidator().validate_field(field).ok
        # A perfect maze on n^2 cells keeps interior walls on
        # 2n(n-1) - (n^2 - 1) boundaries.
        assert len(field.obstacles) == 2 * 4 * 3 - (16 - 1)

    def test_maze_is_seed_deterministic(self):
        first = maze_field(SIZE, seed=7, cells=4)
        second = maze_field(SIZE, seed=7, cells=4)
        assert obstacle_signature(first) == obstacle_signature(second)

    def test_different_seeds_differ(self):
        first = maze_field(SIZE, seed=7, cells=5)
        second = maze_field(SIZE, seed=8, cells=5)
        assert obstacle_signature(first) != obstacle_signature(second)

    def test_rejects_degenerate_order(self):
        with pytest.raises(ValueError):
            maze_field(SIZE, cells=1)


class TestRooms:
    def test_rooms_are_valid(self):
        field = rooms_field(SIZE, seed=5, rooms_x=3, rooms_y=2)
        assert ScenarioValidator().validate_field(field).ok
        assert field.obstacles

    def test_every_wall_has_a_doorway(self):
        # With doorways on every shared wall, at most two rectangles per
        # interior wall segment are emitted.
        rooms_x, rooms_y = 3, 3
        field = rooms_field(SIZE, seed=5, rooms_x=rooms_x, rooms_y=rooms_y)
        interior_walls = (rooms_x - 1) * rooms_y + (rooms_y - 1) * rooms_x
        assert len(field.obstacles) <= 2 * interior_walls

    def test_seed_deterministic(self):
        assert obstacle_signature(rooms_field(SIZE, seed=9)) == obstacle_signature(
            rooms_field(SIZE, seed=9)
        )


class TestSpiral:
    def test_spiral_is_valid(self):
        field = spiral_field(SIZE, seed=3, rings=2)
        assert ScenarioValidator().validate_field(field).ok

    def test_more_rings_more_walls(self):
        few = spiral_field(SIZE, seed=3, rings=1)
        many = spiral_field(SIZE, seed=3, rings=3)
        assert len(many.obstacles) > len(few.obstacles)

    def test_rejects_zero_rings(self):
        with pytest.raises(ValueError):
            spiral_field(SIZE, rings=0)


class TestClutter:
    def test_density_controls_obstruction(self):
        sparse = clutter_field(SIZE, seed=13, density=0.05)
        dense = clutter_field(SIZE, seed=13, density=0.2)
        validator = ScenarioValidator()
        sparse_free = validator.validate_field(sparse).free_area_fraction
        dense_free = validator.validate_field(dense).free_area_fraction
        assert validator.validate_field(dense).ok
        assert dense_free < sparse_free

    def test_base_station_kept_clear(self):
        field = clutter_field(SIZE, seed=13, density=0.2)
        from repro.geometry import Vec2

        assert field.is_free(Vec2(0.0, 0.0))

    def test_rejects_bad_density(self):
        with pytest.raises(ValueError):
            clutter_field(SIZE, density=1.5)
