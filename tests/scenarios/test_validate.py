"""Tests for the scenario validator and bounded-retry generation."""

import pytest

from repro.field import Field, Obstacle
from repro.geometry import Vec2
from repro.scenarios import (
    ScenarioValidator,
    generate_validated,
    scenario_fingerprint,
)
from repro.api import ScenarioSpec


class TestValidateField:
    def test_open_field_is_valid(self):
        report = ScenarioValidator().validate_field(Field(300.0, 300.0))
        assert report.ok
        assert report.free_space_connected
        assert report.base_station_reachable
        assert report.free_area_fraction == 1.0

    def test_partitioned_field_is_rejected(self):
        wall = Obstacle.rectangle(140.0, 0.0, 160.0, 300.0)
        report = ScenarioValidator().validate_field(Field(300.0, 300.0, [wall]))
        assert not report.free_space_connected
        assert not report.ok
        assert any("connected" in issue for issue in report.issues())

    def test_blocked_base_station_is_rejected(self):
        blocker = Obstacle.rectangle(0.0, 0.0, 50.0, 50.0)
        report = ScenarioValidator().validate_field(Field(300.0, 300.0, [blocker]))
        assert not report.base_station_reachable
        assert not report.ok

    def test_minimum_free_fraction(self):
        big = Obstacle.rectangle(60.0, 60.0, 300.0, 300.0)
        validator = ScenarioValidator(min_free_fraction=0.5)
        report = validator.validate_field(Field(300.0, 300.0, [big]))
        assert report.free_space_connected
        assert report.free_area_fraction < 0.5
        assert not report.ok

    def test_validate_positions_reports_blocked_indices(self):
        wall = Obstacle.rectangle(100.0, 100.0, 200.0, 200.0)
        field = Field(300.0, 300.0, [wall])
        blocked = ScenarioValidator().validate_positions(
            field, [Vec2(10, 10), Vec2(150, 150), Vec2(250, 250)]
        )
        assert blocked == (1,)


class TestValidateScenario:
    def test_suite_style_scenario_passes(self):
        spec = ScenarioSpec(
            field_size=300.0,
            layout="maze",
            layout_params={"seed": 7, "cells": 4},
            placement="hotspot",
            sensor_count=16,
            duration=50.0,
        )
        report = ScenarioValidator().validate_scenario(spec)
        assert report.ok
        assert report.blocked_sensors == ()


class TestGenerateValidated:
    def test_returns_first_valid_candidate(self):
        calls = []

        def build(rng):
            calls.append(rng.random())
            return Field(200.0, 200.0)

        field = generate_validated(build, seed=3)
        assert isinstance(field, Field)
        assert len(calls) == 1

    def test_raises_after_bounded_attempts(self):
        wall = Obstacle.rectangle(90.0, 0.0, 110.0, 200.0)

        def build(rng):
            return Field(200.0, 200.0, [wall])

        with pytest.raises(RuntimeError, match="no valid field layout"):
            generate_validated(build, seed=3, max_attempts=4)


class TestFingerprint:
    def test_same_spec_same_fingerprint(self):
        spec = ScenarioSpec(
            field_size=300.0,
            layout="clutter",
            layout_params={"seed": 13},
            placement="uniform",
            sensor_count=12,
        )
        assert scenario_fingerprint(spec) == scenario_fingerprint(spec)

    def test_seed_changes_fingerprint(self):
        spec = ScenarioSpec(
            field_size=300.0,
            layout="clutter",
            layout_params={"seed": 13},
            placement="uniform",
            sensor_count=12,
        )
        other = spec.replace(seed=spec.seed + 1)
        assert scenario_fingerprint(spec) != scenario_fingerprint(other)
