"""Timeline validation: lifecycle suite entries and the validator checks."""

import pytest

from repro.api import ScenarioSpec
from repro.experiments.common import SMOKE_SCALE
from repro.scenarios.suite import DEFAULT_SUITE
from repro.scenarios.validate import ScenarioValidator
from repro.sim import LifecycleEvent


def scenario_with(events, **overrides):
    defaults = dict(
        field_size=300.0, sensor_count=12, duration=20.0,
        coverage_resolution=15.0, seed=2,
    )
    defaults.update(overrides)
    return ScenarioSpec(events=events, **defaults)


class TestSuiteTimelineEntries:
    def test_suite_carries_lifecycle_entries(self):
        timelines = {
            entry.name: entry.timeline
            for entry in DEFAULT_SUITE
            if entry.timeline is not None
        }
        assert timelines == {
            "open-mass-failure": "mass-failure",
            "open-door-slam": "door-slam",
            "clutter-reinforcements": "reinforcements",
        }

    def test_timeline_entries_materialise_events(self):
        for entry in DEFAULT_SUITE:
            spec = entry.spec(SMOKE_SCALE)
            if entry.timeline is None:
                assert spec.events == ()
            else:
                assert len(spec.events) >= 1
                assert entry.events(SMOKE_SCALE) == spec.events

    def test_every_suite_entry_validates_including_timelines(self):
        validator = ScenarioValidator()
        for entry in DEFAULT_SUITE:
            report = validator.validate_scenario(entry.spec(SMOKE_SCALE))
            assert report.ok, f"{entry.name}: {report.issues()}"
            assert report.timeline_issues == ()


class TestValidateTimeline:
    def test_static_scenario_has_no_timeline_issues(self):
        assert ScenarioValidator().validate_timeline(scenario_with(())) == ()

    def test_period_out_of_horizon(self):
        spec = scenario_with(
            [LifecycleEvent(25, "failure", {"count": 1})], duration=20.0
        )
        (issue,) = ScenarioValidator().validate_timeline(spec)
        assert "period 25" in issue and "20 periods" in issue

    def test_failure_fraction_bounds(self):
        spec = scenario_with([LifecycleEvent(3, "failure", {"fraction": 1.5})])
        issues = ScenarioValidator().validate_timeline(spec)
        assert any("outside [0, 1]" in issue for issue in issues)
        ok = scenario_with([LifecycleEvent(3, "failure", {"fraction": 0.4})])
        assert ScenarioValidator().validate_timeline(ok) == ()

    def test_join_staging_point_in_field(self):
        spec = scenario_with(
            [LifecycleEvent(3, "join", {"count": 2, "x": 900.0, "y": 10.0})]
        )
        issues = ScenarioValidator().validate_timeline(spec)
        assert any("staging point" in issue for issue in issues)

    def test_obstacle_rectangle_in_field(self):
        spec = scenario_with(
            [LifecycleEvent(
                3, "obstacle",
                {"xmin": 250.0, "ymin": 10.0, "xmax": 400.0, "ymax": 40.0},
            )]
        )
        issues = ScenarioValidator().validate_timeline(spec)
        assert any("obstacle rectangle" in issue for issue in issues)

    def test_clear_obstacle_tracks_running_count(self):
        appear = LifecycleEvent(
            4, "obstacle",
            {"xmin": 100.0, "ymin": 10.0, "xmax": 150.0, "ymax": 40.0},
        )
        # The cleared index exists only because the appear fires first.
        ok = scenario_with([appear, LifecycleEvent(8, "clear-obstacle",
                                                   {"index": 0})])
        assert ScenarioValidator().validate_timeline(ok) == ()

        # Clearing before anything appears on an obstacle-free field fails.
        bad = scenario_with([LifecycleEvent(2, "clear-obstacle", {"index": 0}),
                             appear])
        issues = ScenarioValidator().validate_timeline(bad)
        assert any("clears obstacle 0" in issue for issue in issues)

        # A second clear of the same (now removed) obstacle fails too.
        double = scenario_with(
            [appear,
             LifecycleEvent(8, "clear-obstacle", {"index": 0}),
             LifecycleEvent(9, "clear-obstacle", {"index": 0})]
        )
        issues = ScenarioValidator().validate_timeline(double)
        assert any("only 0 exist" in issue for issue in issues)

    def test_layout_obstacles_count_toward_clears(self):
        spec = scenario_with(
            [LifecycleEvent(2, "clear-obstacle", {"index": 1})],
            layout="two-obstacle",
        )
        assert ScenarioValidator().validate_timeline(spec) == ()

    def test_issues_fold_into_the_scenario_report(self):
        spec = scenario_with([LifecycleEvent(999, "failure", {"count": 1})])
        report = ScenarioValidator().validate_scenario(spec)
        assert not report.ok
        assert report.timeline_issues
        assert any("period 999" in issue for issue in report.issues())
