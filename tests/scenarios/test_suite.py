"""Tests for the curated scenario suite."""

import pytest

from repro.experiments.common import SMOKE_SCALE
from repro.scenarios import DEFAULT_SUITE, ScenarioSuite, SuiteEntry


class TestSuiteStructure:
    def test_curated_suite_size(self):
        assert len(DEFAULT_SUITE) >= 10

    def test_every_generator_family_is_represented(self):
        layouts = {entry.layout for entry in DEFAULT_SUITE}
        assert {"maze", "rooms", "spiral", "clutter"} <= layouts

    def test_every_new_placement_is_represented(self):
        placements = {entry.placement for entry in DEFAULT_SUITE}
        assert {"hotspot", "perimeter", "grid", "multi-cluster"} <= placements

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(KeyError, match="open-clustered"):
            DEFAULT_SUITE.get("no-such-scenario")

    def test_duplicate_names_rejected(self):
        entry = SuiteEntry("dup", "", layout="obstacle-free", placement="uniform")
        with pytest.raises(ValueError, match="duplicate"):
            ScenarioSuite([entry, entry])


class TestSuiteSpecs:
    def test_specs_materialise_at_scale(self):
        pairs = DEFAULT_SUITE.specs(SMOKE_SCALE)
        assert len(pairs) == len(DEFAULT_SUITE)
        for entry, spec in pairs:
            assert spec.field_size == SMOKE_SCALE.field_size
            assert spec.sensor_count == SMOKE_SCALE.sensor_count
            assert spec.layout == entry.layout

    def test_named_subset(self):
        pairs = DEFAULT_SUITE.specs(SMOKE_SCALE, names=["maze-quad"])
        assert [entry.name for entry, _ in pairs] == ["maze-quad"]

    def test_entries_build_worlds(self):
        entry = DEFAULT_SUITE.get("rooms-grid")
        world = entry.spec(SMOKE_SCALE).build_world()
        assert len(world.sensors) == SMOKE_SCALE.sensor_count
        assert all(world.field.is_free(s.position) for s in world.sensors)
