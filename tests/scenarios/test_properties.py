"""Registry-wide property tests.

Every registered layout crossed with every registered placement must
yield a scenario whose free space is connected and reachable from the
base station, whose sensors all start in free space, and whose
generation is deterministic under a fixed seed (the same scenario
fingerprint twice).  New registry entries are picked up automatically,
so simply registering a generator opts it into these guarantees.
"""

import pytest

from repro.api import ScenarioSpec, layout_registry, placement_registry
from repro.scenarios import ScenarioValidator, scenario_fingerprint

#: Small but non-degenerate scale so the full cross product stays fast.
FIELD_SIZE = 280.0
SENSOR_COUNT = 12

ALL_LAYOUTS = sorted(layout_registry.names())
ALL_PLACEMENTS = sorted(placement_registry.names())


def spec_for(layout: str, placement: str) -> ScenarioSpec:
    return ScenarioSpec(
        field_size=FIELD_SIZE,
        layout=layout,
        placement=placement,
        sensor_count=SENSOR_COUNT,
        duration=10.0,
        seed=23,
    )


class TestEveryRegisteredCombination:
    @pytest.mark.parametrize("layout", ALL_LAYOUTS)
    def test_layout_free_space_is_connected_and_reachable(self, layout):
        report = ScenarioValidator().validate_field(
            spec_for(layout, "uniform").build_field()
        )
        assert report.free_space_connected, report.issues()
        assert report.base_station_reachable, report.issues()

    @pytest.mark.parametrize("layout", ALL_LAYOUTS)
    @pytest.mark.parametrize("placement", ALL_PLACEMENTS)
    def test_all_sensors_start_in_free_space(self, layout, placement):
        spec = spec_for(layout, placement)
        field = spec.build_field()
        positions = spec.initial_positions(field)
        assert len(positions) == SENSOR_COUNT
        blocked = ScenarioValidator().validate_positions(field, positions)
        assert blocked == ()

    @pytest.mark.parametrize("layout", ALL_LAYOUTS)
    @pytest.mark.parametrize("placement", ALL_PLACEMENTS)
    def test_generation_is_deterministic_under_fixed_seed(
        self, layout, placement
    ):
        spec = spec_for(layout, placement)
        assert scenario_fingerprint(spec) == scenario_fingerprint(spec)


class TestNewRegistrationsAreCovered:
    def test_cross_product_includes_the_procedural_entries(self):
        assert {"maze", "rooms", "spiral", "clutter"} <= set(ALL_LAYOUTS)
        assert {"hotspot", "perimeter", "grid", "multi-cluster"} <= set(
            ALL_PLACEMENTS
        )
