"""Smoke tests for the ``python -m repro.scenarios`` CLI."""

import json

from repro.scenarios.cli import main


class TestList:
    def test_lists_layouts_placements_and_suite(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in ("maze", "rooms", "spiral", "clutter"):
            assert name in out
        for name in ("hotspot", "perimeter", "grid", "multi-cluster"):
            assert name in out
        assert "open-clustered" in out


class TestCheck:
    def test_smoke_check_passes(self, capsys):
        assert main(["--check", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "all scenarios valid" in out
        assert out.count("PASS") >= 10
        assert "FAIL" not in out


class TestRender:
    def test_ascii_render_shows_base_station_and_walls(self, capsys):
        assert main(["--render", "maze-quad", "--width", "40"]) == 0
        out = capsys.readouterr().out
        assert "B" in out
        assert "#" in out
        assert "maze-quad" in out

    def test_json_render_round_trips(self, capsys):
        assert main(["--render", "rooms-grid", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "rooms-grid"
        assert payload["obstacles"]
        assert len(payload["positions"]) == payload["spec"]["sensor_count"]
        assert len(payload["fingerprint"]) == 64

    def test_unknown_scenario_is_an_error(self, capsys):
        assert main(["--render", "nope"]) == 2

    def test_no_action_prints_help(self, capsys):
        assert main([]) == 2
