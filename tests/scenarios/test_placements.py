"""Tests for the registered initial-placement strategies."""

import math
import random

import pytest

from repro.api import placement_registry
from repro.field import obstacle_free_field, two_obstacle_field
from repro.scenarios import maze_field
from repro.sim import SimulationConfig


def place(name, field, count=40, seed=3, **params):
    config = SimulationConfig(sensor_count=count, seed=seed)
    strategy = placement_registry.get(name)
    return strategy(config, field, random.Random(seed), **params)


class TestCommonContract:
    @pytest.mark.parametrize(
        "name", ["hotspot", "perimeter", "grid", "multi-cluster"]
    )
    def test_count_and_free_space_on_obstructed_field(self, name):
        field = maze_field(300.0, seed=7, cells=4)
        positions = place(name, field, count=30)
        assert len(positions) == 30
        assert all(field.is_free(p) for p in positions)

    @pytest.mark.parametrize(
        "name", ["hotspot", "perimeter", "grid", "multi-cluster"]
    )
    def test_deterministic_under_fixed_seed(self, name):
        field = two_obstacle_field(400.0)
        first = place(name, field, seed=11)
        second = place(name, field, seed=11)
        assert [(p.x, p.y) for p in first] == [(p.x, p.y) for p in second]


class TestHotspot:
    def test_concentrates_around_center(self):
        field = obstacle_free_field(400.0)
        positions = place("hotspot", field, count=80, spread=0.08)
        cx = sum(p.x for p in positions) / len(positions)
        cy = sum(p.y for p in positions) / len(positions)
        assert abs(cx - 200.0) < 40.0 and abs(cy - 200.0) < 40.0
        mean_dist = sum(
            math.hypot(p.x - 200.0, p.y - 200.0) for p in positions
        ) / len(positions)
        assert mean_dist < 100.0  # far tighter than a uniform draw (~153 m)

    def test_custom_center(self):
        field = obstacle_free_field(400.0)
        positions = place(
            "hotspot", field, count=40, center_x=50.0, center_y=350.0, spread=0.05
        )
        cx = sum(p.x for p in positions) / len(positions)
        cy = sum(p.y for p in positions) / len(positions)
        assert abs(cx - 50.0) < 30.0 and abs(cy - 350.0) < 30.0


class TestPerimeter:
    def test_positions_hug_the_boundary(self):
        field = obstacle_free_field(400.0)
        positions = place("perimeter", field, count=40)
        for p in positions:
            boundary_distance = min(p.x, p.y, 400.0 - p.x, 400.0 - p.y)
            assert boundary_distance < 40.0


class TestGrid:
    def test_lattice_spreads_over_the_field(self):
        field = obstacle_free_field(400.0)
        positions = place("grid", field, count=36, jitter=0.0)
        # Quadrant occupancy: a lattice covers all four quadrants evenly.
        quadrants = {(p.x > 200.0, p.y > 200.0) for p in positions}
        assert len(quadrants) == 4


class TestMultiCluster:
    def test_round_robin_cluster_sizes(self):
        field = obstacle_free_field(400.0)
        positions = place("multi-cluster", field, count=30, clusters=3, spread=0.03)
        # With a tight spread, positions form 3 separated blobs; check via
        # simple 1-NN chaining distance: most points have a close neighbour.
        close = 0
        for i, p in enumerate(positions):
            nearest = min(
                p.distance_to(q) for j, q in enumerate(positions) if j != i
            )
            if nearest < 60.0:
                close += 1
        assert close >= 27

    def test_rejects_zero_clusters(self):
        field = obstacle_free_field(400.0)
        with pytest.raises(ValueError):
            place("multi-cluster", field, clusters=0)
