"""Tests for the coverage grid."""

import math

import numpy as np
import pytest

from repro.geometry import CoverageGrid, Vec2


class TestConstruction:
    def test_shape_and_point_count(self):
        grid = CoverageGrid(0, 0, 100, 50, 10)
        nx, ny = grid.shape
        assert nx == 10
        assert ny == 5
        assert grid.num_points == 50

    def test_invalid_rectangle(self):
        with pytest.raises(ValueError):
            CoverageGrid(0, 0, -10, 10, 1)

    def test_invalid_resolution(self):
        with pytest.raises(ValueError):
            CoverageGrid(0, 0, 10, 10, 0)

    def test_points_inside_rectangle(self):
        grid = CoverageGrid(0, 0, 100, 100, 25)
        for p in grid.points():
            assert 0 <= p.x <= 100
            assert 0 <= p.y <= 100


class TestCoverageMask:
    def test_no_centers_means_no_coverage(self):
        grid = CoverageGrid(0, 0, 100, 100, 10)
        mask = grid.coverage_mask([], 50)
        assert not mask.any()

    def test_large_radius_covers_everything(self):
        grid = CoverageGrid(0, 0, 100, 100, 10)
        mask = grid.coverage_mask([(50, 50)], 1000)
        assert mask.all()

    def test_fraction_of_quarter_disk(self):
        # A disk of radius 50 centered at a corner of a 100x100 field covers
        # pi * 50^2 / 4 of the area.
        grid = CoverageGrid(0, 0, 100, 100, 2)
        mask = grid.coverage_mask([(0, 0)], 50)
        expected = math.pi * 50**2 / 4 / (100 * 100)
        assert grid.fraction(mask) == pytest.approx(expected, abs=0.02)

    def test_multiple_centers_union(self):
        grid = CoverageGrid(0, 0, 100, 100, 5)
        single = grid.fraction(grid.coverage_mask([(25, 50)], 20))
        double = grid.fraction(grid.coverage_mask([(25, 50), (75, 50)], 20))
        assert double == pytest.approx(2 * single, rel=0.05)

    def test_fraction_with_domain(self):
        grid = CoverageGrid(0, 0, 100, 100, 10)
        mask = grid.coverage_mask([(0, 0)], 1000)
        domain = grid.mask_from_predicate(lambda p: p.x < 50)
        assert grid.fraction(mask, domain=domain) == pytest.approx(1.0)

    def test_fraction_with_empty_domain(self):
        grid = CoverageGrid(0, 0, 100, 100, 10)
        mask = grid.coverage_mask([(0, 0)], 1000)
        domain = np.zeros(grid.num_points, dtype=bool)
        assert grid.fraction(mask, domain=domain) == 0.0


class TestPredicateMask:
    def test_half_plane_predicate(self):
        grid = CoverageGrid(0, 0, 100, 100, 5)
        mask = grid.mask_from_predicate(lambda p: p.y > 50)
        assert grid.fraction(mask) == pytest.approx(0.5, abs=0.05)

    def test_point_arrays_match_points(self):
        grid = CoverageGrid(0, 0, 30, 30, 10)
        px, py = grid.point_arrays()
        listed = list(grid.points())
        assert len(px) == len(listed)
        assert listed[0] == Vec2(float(px[0]), float(py[0]))
