"""Unit and property tests for polygons."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry import Polygon, Segment, Vec2


def unit_square() -> Polygon:
    return Polygon.rectangle(0, 0, 10, 10)


class TestConstruction:
    def test_requires_three_vertices(self):
        with pytest.raises(ValueError):
            Polygon([Vec2(0, 0), Vec2(1, 1)])

    def test_rectangle_validation(self):
        with pytest.raises(ValueError):
            Polygon.rectangle(5, 5, 5, 10)

    def test_regular_polygon_vertex_count(self):
        hexagon = Polygon.regular(Vec2(0, 0), 10, 6)
        assert len(hexagon.vertices) == 6

    def test_regular_polygon_needs_three_sides(self):
        with pytest.raises(ValueError):
            Polygon.regular(Vec2(0, 0), 10, 2)


class TestMeasures:
    def test_rectangle_area(self):
        assert unit_square().area() == pytest.approx(100.0)

    def test_rectangle_perimeter(self):
        assert unit_square().perimeter() == pytest.approx(40.0)

    def test_signed_area_positive_ccw(self):
        assert unit_square().signed_area() > 0

    def test_signed_area_negative_cw(self):
        cw = Polygon(list(reversed(unit_square().vertices)))
        assert cw.signed_area() < 0
        assert cw.counter_clockwise().signed_area() > 0

    def test_centroid_of_rectangle(self):
        assert unit_square().centroid().almost_equals(Vec2(5, 5))

    def test_bounding_box(self):
        assert unit_square().bounding_box() == (0, 0, 10, 10)

    def test_triangle_area(self):
        tri = Polygon([Vec2(0, 0), Vec2(10, 0), Vec2(0, 10)])
        assert tri.area() == pytest.approx(50.0)

    def test_edges_count(self):
        assert len(unit_square().edges()) == 4

    def test_convexity(self):
        assert unit_square().is_convex()
        concave = Polygon([Vec2(0, 0), Vec2(10, 0), Vec2(10, 10), Vec2(5, 5), Vec2(0, 10)])
        assert not concave.is_convex()


class TestContainment:
    def test_contains_interior_point(self):
        assert unit_square().contains(Vec2(5, 5))

    def test_does_not_contain_exterior_point(self):
        assert not unit_square().contains(Vec2(15, 5))

    def test_boundary_point_included_by_default(self):
        assert unit_square().contains(Vec2(0, 5))

    def test_boundary_point_excluded_when_requested(self):
        assert not unit_square().contains(Vec2(0, 5), include_boundary=False)

    def test_on_boundary(self):
        assert unit_square().on_boundary(Vec2(10, 3))
        assert not unit_square().on_boundary(Vec2(5, 5))

    def test_distance_to_point(self):
        assert unit_square().distance_to_point(Vec2(5, 5)) == 0.0
        assert unit_square().distance_to_point(Vec2(13, 5)) == pytest.approx(3.0)

    def test_boundary_distance_inside(self):
        assert unit_square().boundary_distance_to_point(Vec2(5, 5)) == pytest.approx(5.0)

    def test_closest_boundary_point(self):
        p = unit_square().closest_boundary_point(Vec2(5, 20))
        assert p.almost_equals(Vec2(5, 10))


class TestSegmentQueries:
    def test_intersects_crossing_segment(self):
        assert unit_square().intersects_segment(Segment(Vec2(-5, 5), Vec2(15, 5)))

    def test_does_not_intersect_far_segment(self):
        assert not unit_square().intersects_segment(Segment(Vec2(20, 20), Vec2(30, 30)))

    def test_segment_crosses_interior(self):
        assert unit_square().segment_crosses_interior(Segment(Vec2(-5, 5), Vec2(15, 5)))

    def test_grazing_segment_does_not_cross_interior(self):
        grazing = Segment(Vec2(-5, 10), Vec2(15, 10))
        assert not unit_square().segment_crosses_interior(grazing)

    def test_segment_intersections_sorted(self):
        pts = unit_square().segment_intersections(Segment(Vec2(-5, 5), Vec2(15, 5)))
        assert len(pts) == 2
        assert pts[0].x < pts[1].x

    def test_contained_segment_has_no_boundary_intersections(self):
        pts = unit_square().segment_intersections(Segment(Vec2(2, 2), Vec2(8, 8)))
        assert pts == []


class TestTransforms:
    def test_translation(self):
        moved = unit_square().translated(Vec2(5, 5))
        assert moved.centroid().almost_equals(Vec2(10, 10))
        assert moved.area() == pytest.approx(100.0)

    def test_scaling_about_centroid(self):
        scaled = unit_square().scaled(2.0)
        assert scaled.area() == pytest.approx(400.0)
        assert scaled.centroid().almost_equals(Vec2(5, 5))


class TestProperties:
    sizes = st.floats(min_value=1.0, max_value=500.0)
    offsets = st.floats(min_value=-500.0, max_value=500.0)

    @given(offsets, offsets, sizes, sizes)
    def test_rectangle_area_matches_dimensions(self, x, y, w, h):
        rect = Polygon.rectangle(x, y, x + w, y + h)
        assert rect.area() == pytest.approx(w * h, rel=1e-9)

    @given(offsets, offsets, sizes, sizes)
    def test_rectangle_contains_its_centroid(self, x, y, w, h):
        rect = Polygon.rectangle(x, y, x + w, y + h)
        assert rect.contains(rect.centroid())

    @given(st.integers(min_value=3, max_value=12), sizes)
    def test_regular_polygon_area_below_circle(self, sides, r):
        poly = Polygon.regular(Vec2(0, 0), r, sides)
        assert poly.area() <= math.pi * r * r + 1e-6
        assert poly.is_convex()
