"""Tests for half-plane clipping and Voronoi-cell construction."""

import pytest
from hypothesis import given, strategies as st

from repro.geometry import (
    HalfPlane,
    Polygon,
    Vec2,
    bisector_halfplane,
    clip_polygon,
    clip_polygon_to_cell,
)


class TestHalfPlane:
    def test_contains(self):
        hp = HalfPlane(Vec2(1, 0), 5.0)  # x <= 5
        assert hp.contains(Vec2(3, 100))
        assert not hp.contains(Vec2(6, 0))

    def test_signed_distance_sign(self):
        hp = HalfPlane(Vec2(1, 0), 5.0)
        assert hp.signed_distance(Vec2(7, 0)) > 0
        assert hp.signed_distance(Vec2(3, 0)) < 0

    def test_line_intersection(self):
        hp = HalfPlane(Vec2(1, 0), 5.0)
        crossing = hp.line_intersection(Vec2(0, 0), Vec2(10, 0))
        assert crossing.almost_equals(Vec2(5, 0))

    def test_line_intersection_parallel(self):
        hp = HalfPlane(Vec2(1, 0), 5.0)
        assert hp.line_intersection(Vec2(0, 0), Vec2(0, 10)) is None


class TestBisector:
    def test_bisector_splits_evenly(self):
        hp = bisector_halfplane(Vec2(0, 0), Vec2(10, 0))
        assert hp.contains(Vec2(2, 0))       # closer to the site
        assert not hp.contains(Vec2(8, 0))   # closer to the other
        assert hp.contains(Vec2(5, 0))       # equidistant -> boundary

    @given(
        st.floats(min_value=-100, max_value=100),
        st.floats(min_value=-100, max_value=100),
        st.floats(min_value=-100, max_value=100),
        st.floats(min_value=-100, max_value=100),
        st.floats(min_value=-100, max_value=100),
        st.floats(min_value=-100, max_value=100),
    )
    def test_bisector_matches_distance_comparison(self, sx, sy, ox, oy, px, py):
        site, other, p = Vec2(sx, sy), Vec2(ox, oy), Vec2(px, py)
        if site.distance_to(other) < 1e-6:
            return
        hp = bisector_halfplane(site, other)
        closer_to_site = p.distance_to(site) <= p.distance_to(other) + 1e-6
        # Points within ``eps`` of the bisector plane may classify either
        # way; their distance difference can reach 2 * eps (for p on the
        # inter-site axis, |d_site - d_other| = 2 * plane distance), so
        # the escape clause must cover that full band.
        assert hp.contains(p, eps=1e-3) == closer_to_site or abs(
            p.distance_to(site) - p.distance_to(other)
        ) < 2.05e-3


class TestClipping:
    def test_clip_square_in_half(self):
        square = Polygon.rectangle(0, 0, 10, 10).vertices
        clipped = clip_polygon(square, HalfPlane(Vec2(1, 0), 5.0))
        poly = Polygon(clipped)
        assert poly.area() == pytest.approx(50.0)

    def test_clip_away_everything(self):
        square = Polygon.rectangle(0, 0, 10, 10).vertices
        clipped = clip_polygon(square, HalfPlane(Vec2(1, 0), -5.0))
        assert len(clipped) < 3

    def test_clip_keeps_everything(self):
        square = Polygon.rectangle(0, 0, 10, 10).vertices
        clipped = clip_polygon(square, HalfPlane(Vec2(1, 0), 100.0))
        assert Polygon(clipped).area() == pytest.approx(100.0)

    def test_empty_input(self):
        assert clip_polygon([], HalfPlane(Vec2(1, 0), 5.0)) == []


class TestCellConstruction:
    def test_two_sites_split_field(self):
        bounding = Polygon.rectangle(0, 0, 100, 100)
        cell = clip_polygon_to_cell(bounding, Vec2(25, 50), [Vec2(75, 50)])
        assert cell is not None
        assert cell.area() == pytest.approx(5000.0, rel=1e-6)
        assert cell.contains(Vec2(10, 50))
        assert not cell.contains(Vec2(90, 50))

    def test_single_site_gets_whole_field(self):
        bounding = Polygon.rectangle(0, 0, 100, 100)
        cell = clip_polygon_to_cell(bounding, Vec2(10, 10), [])
        assert cell.area() == pytest.approx(10000.0)

    def test_four_symmetric_sites(self):
        bounding = Polygon.rectangle(0, 0, 100, 100)
        sites = [Vec2(25, 25), Vec2(75, 25), Vec2(25, 75), Vec2(75, 75)]
        areas = []
        for i, site in enumerate(sites):
            others = [s for j, s in enumerate(sites) if j != i]
            cell = clip_polygon_to_cell(bounding, site, others)
            areas.append(cell.area())
        assert all(a == pytest.approx(2500.0, rel=1e-6) for a in areas)

    def test_coincident_other_site_is_ignored(self):
        bounding = Polygon.rectangle(0, 0, 100, 100)
        cell = clip_polygon_to_cell(bounding, Vec2(50, 50), [Vec2(50, 50)])
        assert cell.area() == pytest.approx(10000.0)
