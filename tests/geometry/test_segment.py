"""Unit and property tests for line segments."""

import pytest
from hypothesis import given, strategies as st

from repro.geometry import Segment, Vec2, on_segment, orientation

coord = st.floats(min_value=-1000, max_value=1000, allow_nan=False, allow_infinity=False)
points = st.builds(Vec2, coord, coord)


class TestBasics:
    def test_length(self):
        assert Segment(Vec2(0, 0), Vec2(3, 4)).length() == pytest.approx(5.0)

    def test_midpoint(self):
        assert Segment(Vec2(0, 0), Vec2(4, 6)).midpoint() == Vec2(2, 3)

    def test_direction(self):
        assert Segment(Vec2(0, 0), Vec2(10, 0)).direction().almost_equals(Vec2(1, 0))

    def test_point_at(self):
        s = Segment(Vec2(0, 0), Vec2(10, 0))
        assert s.point_at(0.3).almost_equals(Vec2(3, 0))

    def test_reversed(self):
        s = Segment(Vec2(1, 2), Vec2(3, 4))
        assert s.reversed() == Segment(Vec2(3, 4), Vec2(1, 2))


class TestOrientation:
    def test_counter_clockwise(self):
        assert orientation(Vec2(0, 0), Vec2(1, 0), Vec2(1, 1)) == 1

    def test_clockwise(self):
        assert orientation(Vec2(0, 0), Vec2(1, 0), Vec2(1, -1)) == -1

    def test_collinear(self):
        assert orientation(Vec2(0, 0), Vec2(1, 0), Vec2(2, 0)) == 0

    def test_on_segment(self):
        assert on_segment(Vec2(1, 0), Vec2(0, 0), Vec2(2, 0))
        assert not on_segment(Vec2(3, 0), Vec2(0, 0), Vec2(2, 0))


class TestDistances:
    def test_distance_to_point_perpendicular(self):
        s = Segment(Vec2(0, 0), Vec2(10, 0))
        assert s.distance_to_point(Vec2(5, 3)) == pytest.approx(3.0)

    def test_distance_to_point_beyond_endpoint(self):
        s = Segment(Vec2(0, 0), Vec2(10, 0))
        assert s.distance_to_point(Vec2(13, 4)) == pytest.approx(5.0)

    def test_closest_point_clamps(self):
        s = Segment(Vec2(0, 0), Vec2(10, 0))
        assert s.closest_point(Vec2(-5, 5)).almost_equals(Vec2(0, 0))

    def test_contains_point(self):
        s = Segment(Vec2(0, 0), Vec2(10, 10))
        assert s.contains_point(Vec2(5, 5))
        assert not s.contains_point(Vec2(5, 6))

    def test_segment_to_segment_distance(self):
        s1 = Segment(Vec2(0, 0), Vec2(10, 0))
        s2 = Segment(Vec2(0, 5), Vec2(10, 5))
        assert s1.distance_to_segment(s2) == pytest.approx(5.0)

    def test_intersecting_segments_have_zero_distance(self):
        s1 = Segment(Vec2(0, 0), Vec2(10, 10))
        s2 = Segment(Vec2(0, 10), Vec2(10, 0))
        assert s1.distance_to_segment(s2) == 0.0


class TestIntersection:
    def test_crossing_segments(self):
        s1 = Segment(Vec2(0, 0), Vec2(10, 0))
        s2 = Segment(Vec2(5, -5), Vec2(5, 5))
        assert s1.intersects(s2)
        assert s1.intersection(s2).almost_equals(Vec2(5, 0))

    def test_non_crossing_segments(self):
        s1 = Segment(Vec2(0, 0), Vec2(10, 0))
        s2 = Segment(Vec2(0, 1), Vec2(10, 1))
        assert not s1.intersects(s2)
        assert s1.intersection(s2) is None

    def test_touching_at_endpoint(self):
        s1 = Segment(Vec2(0, 0), Vec2(5, 0))
        s2 = Segment(Vec2(5, 0), Vec2(5, 5))
        assert s1.intersects(s2)
        assert s1.intersection(s2).almost_equals(Vec2(5, 0))

    def test_collinear_overlap_reports_no_unique_point(self):
        s1 = Segment(Vec2(0, 0), Vec2(10, 0))
        s2 = Segment(Vec2(5, 0), Vec2(15, 0))
        assert s1.intersects(s2)
        assert s1.intersection(s2) is None

    def test_intersection_parameters(self):
        s1 = Segment(Vec2(0, 0), Vec2(10, 0))
        s2 = Segment(Vec2(5, -5), Vec2(5, 5))
        t, u = s1.intersection_parameters(s2)
        assert t == pytest.approx(0.5)
        assert u == pytest.approx(0.5)


class TestClipping:
    def test_fully_inside(self):
        s = Segment(Vec2(1, 1), Vec2(2, 2))
        assert s.clip_to_box(0, 0, 10, 10) == s

    def test_fully_outside(self):
        s = Segment(Vec2(20, 20), Vec2(30, 30))
        assert s.clip_to_box(0, 0, 10, 10) is None

    def test_crossing_boundary(self):
        s = Segment(Vec2(-5, 5), Vec2(15, 5))
        clipped = s.clip_to_box(0, 0, 10, 10)
        assert clipped.a.almost_equals(Vec2(0, 5))
        assert clipped.b.almost_equals(Vec2(10, 5))


class TestProperties:
    @given(points, points, points, points)
    def test_intersection_is_symmetric(self, a, b, c, d):
        s1, s2 = Segment(a, b), Segment(c, d)
        assert s1.intersects(s2) == s2.intersects(s1)

    @given(points, points)
    def test_midpoint_equidistant(self, a, b):
        mid = Segment(a, b).midpoint()
        assert mid.distance_to(a) == pytest.approx(mid.distance_to(b), abs=1e-6)

    @given(points, points, points)
    def test_distance_to_point_not_more_than_endpoint_distance(self, a, b, p):
        s = Segment(a, b)
        assert s.distance_to_point(p) <= min(p.distance_to(a), p.distance_to(b)) + 1e-6

    @given(points, points, st.floats(min_value=0, max_value=1))
    def test_points_on_segment_have_zero_distance(self, a, b, t):
        s = Segment(a, b)
        p = s.point_at(t)
        assert s.distance_to_point(p) == pytest.approx(0.0, abs=1e-6)
