"""Unit and property tests for circles and disks."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry import Circle, Segment, Vec2, circle_circle_intersections, disk_overlap_area

coord = st.floats(min_value=-500, max_value=500, allow_nan=False, allow_infinity=False)
radius = st.floats(min_value=0.1, max_value=200, allow_nan=False, allow_infinity=False)


class TestContainment:
    def test_contains_center(self):
        assert Circle(Vec2(0, 0), 5).contains(Vec2(0, 0))

    def test_contains_boundary_point(self):
        assert Circle(Vec2(0, 0), 5).contains(Vec2(5, 0))

    def test_does_not_contain_outside(self):
        assert not Circle(Vec2(0, 0), 5).contains(Vec2(6, 0))

    def test_strictly_contains(self):
        c = Circle(Vec2(0, 0), 5)
        assert c.strictly_contains(Vec2(1, 1))
        assert not c.strictly_contains(Vec2(5, 0))

    def test_area_and_circumference(self):
        c = Circle(Vec2(0, 0), 2)
        assert c.area() == pytest.approx(4 * math.pi)
        assert c.circumference() == pytest.approx(4 * math.pi)

    def test_point_at_angle(self):
        c = Circle(Vec2(1, 1), 2)
        assert c.point_at_angle(0).almost_equals(Vec2(3, 1))


class TestSegmentIntersection:
    def test_chord_through_center(self):
        c = Circle(Vec2(0, 0), 5)
        seg = Segment(Vec2(-10, 0), Vec2(10, 0))
        pts = c.segment_intersections(seg)
        assert len(pts) == 2
        xs = sorted(p.x for p in pts)
        assert xs[0] == pytest.approx(-5.0)
        assert xs[1] == pytest.approx(5.0)

    def test_tangent_segment(self):
        c = Circle(Vec2(0, 0), 5)
        seg = Segment(Vec2(-10, 5), Vec2(10, 5))
        pts = c.segment_intersections(seg)
        assert len(pts) == 1
        assert pts[0].almost_equals(Vec2(0, 5))

    def test_missing_segment(self):
        c = Circle(Vec2(0, 0), 5)
        seg = Segment(Vec2(-10, 6), Vec2(10, 6))
        assert c.segment_intersections(seg) == []

    def test_clip_segment_fully_inside(self):
        c = Circle(Vec2(0, 0), 10)
        seg = Segment(Vec2(-1, 0), Vec2(1, 0))
        assert c.clip_segment(seg) == seg

    def test_clip_segment_crossing(self):
        c = Circle(Vec2(0, 0), 5)
        seg = Segment(Vec2(-10, 0), Vec2(10, 0))
        clipped = c.clip_segment(seg)
        assert clipped.length() == pytest.approx(10.0)

    def test_clip_segment_outside(self):
        c = Circle(Vec2(0, 0), 5)
        seg = Segment(Vec2(6, 6), Vec2(10, 10))
        assert c.clip_segment(seg) is None

    def test_clip_segment_one_end_inside(self):
        c = Circle(Vec2(0, 0), 5)
        seg = Segment(Vec2(0, 0), Vec2(10, 0))
        clipped = c.clip_segment(seg)
        assert clipped.a.almost_equals(Vec2(0, 0))
        assert clipped.b.almost_equals(Vec2(5, 0))

    def test_intersects_segment(self):
        c = Circle(Vec2(0, 0), 5)
        assert c.intersects_segment(Segment(Vec2(-10, 3), Vec2(10, 3)))
        assert not c.intersects_segment(Segment(Vec2(-10, 8), Vec2(10, 8)))


class TestCircleCircle:
    def test_two_intersections(self):
        pts = circle_circle_intersections(
            Circle(Vec2(0, 0), 5), Circle(Vec2(6, 0), 5)
        )
        assert len(pts) == 2
        for p in pts:
            assert p.x == pytest.approx(3.0)

    def test_tangent_circles(self):
        pts = circle_circle_intersections(
            Circle(Vec2(0, 0), 5), Circle(Vec2(10, 0), 5)
        )
        assert len(pts) == 1
        assert pts[0].almost_equals(Vec2(5, 0))

    def test_disjoint_circles(self):
        assert (
            circle_circle_intersections(Circle(Vec2(0, 0), 5), Circle(Vec2(20, 0), 5))
            == []
        )

    def test_concentric_circles(self):
        assert (
            circle_circle_intersections(Circle(Vec2(0, 0), 5), Circle(Vec2(0, 0), 3))
            == []
        )

    def test_intersects_circle(self):
        assert Circle(Vec2(0, 0), 5).intersects_circle(Circle(Vec2(8, 0), 5))
        assert not Circle(Vec2(0, 0), 5).intersects_circle(Circle(Vec2(20, 0), 5))


class TestOverlapArea:
    def test_disjoint_disks(self):
        assert disk_overlap_area(Circle(Vec2(0, 0), 5), Circle(Vec2(20, 0), 5)) == 0.0

    def test_identical_disks(self):
        a = disk_overlap_area(Circle(Vec2(0, 0), 5), Circle(Vec2(0, 0), 5))
        assert a == pytest.approx(math.pi * 25)

    def test_contained_disk(self):
        a = disk_overlap_area(Circle(Vec2(0, 0), 10), Circle(Vec2(1, 0), 2))
        assert a == pytest.approx(math.pi * 4)

    def test_half_overlap_is_symmetric(self):
        a = disk_overlap_area(Circle(Vec2(0, 0), 5), Circle(Vec2(4, 0), 5))
        b = disk_overlap_area(Circle(Vec2(4, 0), 5), Circle(Vec2(0, 0), 5))
        assert a == pytest.approx(b)
        assert 0 < a < math.pi * 25

    @given(st.builds(Vec2, coord, coord), st.builds(Vec2, coord, coord), radius, radius)
    def test_overlap_bounded_by_smaller_disk(self, c1, c2, r1, r2):
        overlap = disk_overlap_area(Circle(c1, r1), Circle(c2, r2))
        smaller = math.pi * min(r1, r2) ** 2
        assert -1e-6 <= overlap <= smaller + 1e-6

    @given(coord, radius)
    def test_boundary_points_are_contained(self, angle_seed, r):
        c = Circle(Vec2(0, 0), r)
        p = c.point_at_angle(angle_seed)
        assert c.contains(p)
