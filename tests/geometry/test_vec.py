"""Unit and property tests for 2-D vectors."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry import Vec2

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)
vectors = st.builds(Vec2, finite, finite)


class TestArithmetic:
    def test_addition(self):
        assert Vec2(1, 2) + Vec2(3, 4) == Vec2(4, 6)

    def test_subtraction(self):
        assert Vec2(5, 5) - Vec2(2, 3) == Vec2(3, 2)

    def test_scalar_multiplication(self):
        assert Vec2(1, -2) * 3 == Vec2(3, -6)
        assert 3 * Vec2(1, -2) == Vec2(3, -6)

    def test_division(self):
        assert Vec2(4, 8) / 2 == Vec2(2, 4)

    def test_negation(self):
        assert -Vec2(1, -2) == Vec2(-1, 2)

    def test_iteration_and_tuple(self):
        assert tuple(Vec2(1, 2)) == (1.0, 2.0)
        assert Vec2(1, 2).as_tuple() == (1.0, 2.0)

    def test_immutability(self):
        v = Vec2(1, 2)
        with pytest.raises(Exception):
            v.x = 5  # type: ignore[misc]


class TestProducts:
    def test_dot(self):
        assert Vec2(1, 2).dot(Vec2(3, 4)) == 11

    def test_cross_sign(self):
        assert Vec2(1, 0).cross(Vec2(0, 1)) == 1
        assert Vec2(0, 1).cross(Vec2(1, 0)) == -1

    def test_norm(self):
        assert Vec2(3, 4).norm() == pytest.approx(5.0)
        assert Vec2(3, 4).norm_sq() == pytest.approx(25.0)

    def test_distance(self):
        assert Vec2(0, 0).distance_to(Vec2(3, 4)) == pytest.approx(5.0)
        assert Vec2(0, 0).distance_sq_to(Vec2(3, 4)) == pytest.approx(25.0)


class TestDirections:
    def test_normalized_unit_length(self):
        v = Vec2(10, -5).normalized()
        assert v.norm() == pytest.approx(1.0)

    def test_normalized_zero_vector(self):
        assert Vec2(0, 0).normalized() == Vec2(0, 0)

    def test_from_polar(self):
        v = Vec2.from_polar(2.0, math.pi / 2)
        assert v.almost_equals(Vec2(0, 2))

    def test_rotation_90_degrees(self):
        v = Vec2(1, 0).rotated(math.pi / 2)
        assert v.almost_equals(Vec2(0, 1))

    def test_perpendicular(self):
        assert Vec2(1, 0).perpendicular().almost_equals(Vec2(0, 1))

    def test_towards(self):
        assert Vec2(0, 0).towards(Vec2(10, 0)).almost_equals(Vec2(1, 0))

    def test_lerp_endpoints_and_midpoint(self):
        a, b = Vec2(0, 0), Vec2(4, 8)
        assert a.lerp(b, 0.0) == a
        assert a.lerp(b, 1.0) == b
        assert a.lerp(b, 0.5) == Vec2(2, 4)

    def test_clamped_norm(self):
        assert Vec2(10, 0).clamped_norm(3).almost_equals(Vec2(3, 0))
        assert Vec2(1, 0).clamped_norm(3) == Vec2(1, 0)

    def test_angle(self):
        assert Vec2(0, 1).angle() == pytest.approx(math.pi / 2)


class TestProperties:
    @given(vectors, vectors)
    def test_addition_commutes(self, a, b):
        assert (a + b).almost_equals(b + a, eps=1e-6)

    @given(vectors, vectors)
    def test_distance_symmetry(self, a, b):
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    @given(vectors, vectors, vectors)
    def test_triangle_inequality(self, a, b, c):
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6

    @given(vectors)
    def test_norm_is_nonnegative(self, v):
        assert v.norm() >= 0

    @given(vectors, st.floats(min_value=-math.pi, max_value=math.pi))
    def test_rotation_preserves_norm(self, v, angle):
        assert v.rotated(angle).norm() == pytest.approx(v.norm(), abs=1e-6)

    @given(vectors, vectors)
    def test_dot_consistent_with_cross(self, a, b):
        # |a x b|^2 + (a . b)^2 == |a|^2 |b|^2 (Lagrange identity).
        lhs = a.cross(b) ** 2 + a.dot(b) ** 2
        rhs = a.norm_sq() * b.norm_sq()
        assert lhs == pytest.approx(rhs, rel=1e-6, abs=1e-3)
