"""Tests for the random-obstacle field generator (Fig 13 workload)."""

import random

import pytest

from repro.field import RandomObstacleConfig, generate_random_obstacle_field
from repro.geometry import Vec2


class TestGenerator:
    def test_obstacle_count_in_range(self):
        rng = random.Random(1)
        config = RandomObstacleConfig(field_size=500.0, connectivity_resolution=25.0)
        for _ in range(5):
            field = generate_random_obstacle_field(rng, config)
            assert 1 <= len(field.obstacles) <= 4

    def test_free_space_stays_connected(self):
        rng = random.Random(2)
        config = RandomObstacleConfig(field_size=500.0, connectivity_resolution=25.0)
        for _ in range(5):
            field = generate_random_obstacle_field(rng, config)
            assert field.free_space_connected(resolution=25.0)

    def test_base_station_stays_clear(self):
        rng = random.Random(3)
        config = RandomObstacleConfig(
            field_size=500.0, keep_clear_radius=40.0, connectivity_resolution=25.0
        )
        for _ in range(5):
            field = generate_random_obstacle_field(rng, config)
            assert field.is_free(Vec2(0.0, 0.0))
            for obstacle in field.obstacles:
                assert obstacle.distance_to(Vec2(0.0, 0.0)) >= 40.0 - 1e-9

    def test_obstacles_within_field(self):
        rng = random.Random(4)
        config = RandomObstacleConfig(field_size=300.0, max_side=120.0, connectivity_resolution=20.0)
        field = generate_random_obstacle_field(rng, config)
        for obstacle in field.obstacles:
            xmin, ymin, xmax, ymax = obstacle.bounding_box()
            assert 0 <= xmin <= xmax <= 300
            assert 0 <= ymin <= ymax <= 300

    def test_side_lengths_respect_config(self):
        rng = random.Random(5)
        config = RandomObstacleConfig(
            field_size=500.0, min_side=50.0, max_side=100.0, connectivity_resolution=25.0
        )
        field = generate_random_obstacle_field(rng, config)
        for obstacle in field.obstacles:
            xmin, ymin, xmax, ymax = obstacle.bounding_box()
            assert 50.0 - 1e-6 <= xmax - xmin <= 100.0 + 1e-6
            assert 50.0 - 1e-6 <= ymax - ymin <= 100.0 + 1e-6

    def test_reproducible_with_same_seed(self):
        config = RandomObstacleConfig(field_size=400.0, connectivity_resolution=25.0)
        field_a = generate_random_obstacle_field(random.Random(9), config)
        field_b = generate_random_obstacle_field(random.Random(9), config)
        assert len(field_a.obstacles) == len(field_b.obstacles)
        for oa, ob in zip(field_a.obstacles, field_b.obstacles):
            assert oa.bounding_box() == pytest.approx(ob.bounding_box())
