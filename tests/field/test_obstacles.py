"""Tests for polygonal obstacles."""

import pytest

from repro.field import Obstacle
from repro.geometry import Segment, Vec2


class TestRectangleObstacle:
    def setup_method(self):
        self.ob = Obstacle.rectangle(10, 10, 20, 20, name="block")

    def test_contains_interior(self):
        assert self.ob.contains(Vec2(15, 15))

    def test_boundary_not_contained_by_default(self):
        assert not self.ob.contains(Vec2(10, 15))
        assert self.ob.contains(Vec2(10, 15), include_boundary=True)

    def test_does_not_contain_outside(self):
        assert not self.ob.contains(Vec2(5, 5))

    def test_blocks_crossing_segment(self):
        assert self.ob.blocks_segment(Segment(Vec2(0, 15), Vec2(30, 15)))

    def test_does_not_block_distant_segment(self):
        assert not self.ob.blocks_segment(Segment(Vec2(0, 0), Vec2(30, 0)))

    def test_does_not_block_grazing_segment(self):
        assert not self.ob.blocks_segment(Segment(Vec2(0, 10), Vec2(30, 10)))

    def test_perimeter_and_area(self):
        assert self.ob.perimeter() == pytest.approx(40.0)
        assert self.ob.area() == pytest.approx(100.0)

    def test_bounding_box(self):
        assert self.ob.bounding_box() == (10, 10, 20, 20)

    def test_distance_to(self):
        assert self.ob.distance_to(Vec2(15, 15)) == 0.0
        assert self.ob.distance_to(Vec2(25, 15)) == pytest.approx(5.0)

    def test_closest_boundary_point(self):
        assert self.ob.closest_boundary_point(Vec2(15, 0)).almost_equals(Vec2(15, 10))

    def test_first_hit_orders_by_entry(self):
        hit = self.ob.first_hit(Segment(Vec2(0, 15), Vec2(30, 15)))
        assert hit.almost_equals(Vec2(10, 15))

    def test_first_hit_none_when_missing(self):
        assert self.ob.first_hit(Segment(Vec2(0, 0), Vec2(5, 5))) is None

    def test_boundary_edges(self):
        assert len(self.ob.boundary_edges()) == 4

    def test_name(self):
        assert self.ob.name == "block"


class TestOverlap:
    def test_overlapping_rectangles(self):
        a = Obstacle.rectangle(0, 0, 10, 10)
        b = Obstacle.rectangle(5, 5, 15, 15)
        assert a.overlaps(b)
        assert b.overlaps(a)

    def test_disjoint_rectangles(self):
        a = Obstacle.rectangle(0, 0, 10, 10)
        b = Obstacle.rectangle(20, 20, 30, 30)
        assert not a.overlaps(b)

    def test_contained_rectangle(self):
        outer = Obstacle.rectangle(0, 0, 100, 100)
        inner = Obstacle.rectangle(40, 40, 60, 60)
        assert outer.overlaps(inner)
        assert inner.overlaps(outer)


class TestPolygonalObstacle:
    def test_triangle_obstacle(self):
        tri = Obstacle.from_vertices([Vec2(0, 0), Vec2(10, 0), Vec2(5, 10)], name="tri")
        assert tri.contains(Vec2(5, 3))
        assert not tri.contains(Vec2(0, 10))
        assert tri.area() == pytest.approx(50.0)
