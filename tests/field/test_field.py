"""Tests for the field model."""

import pytest

from repro.field import Field, Obstacle
from repro.geometry import Circle, Segment, Vec2


@pytest.fixture
def empty_field() -> Field:
    return Field(100.0, 100.0)


@pytest.fixture
def field_with_block() -> Field:
    return Field(100.0, 100.0, [Obstacle.rectangle(40, 40, 60, 60)])


class TestBasics:
    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Field(-1.0, 10.0)

    def test_bounds_and_area(self, empty_field):
        assert empty_field.bounds == (0.0, 0.0, 100.0, 100.0)
        assert empty_field.area() == pytest.approx(10000.0)

    def test_boundary_edges(self, empty_field):
        assert len(empty_field.boundary_edges()) == 4

    def test_free_area_subtracts_obstacles(self, field_with_block):
        free = field_with_block.free_area(resolution=2.0)
        assert free == pytest.approx(10000.0 - 400.0, rel=0.05)

    def test_with_obstacles_copy(self, empty_field):
        modified = empty_field.with_obstacles([Obstacle.rectangle(0, 0, 10, 10)])
        assert len(modified.obstacles) == 1
        assert len(empty_field.obstacles) == 0


class TestPointQueries:
    def test_in_bounds(self, empty_field):
        assert empty_field.in_bounds(Vec2(50, 50))
        assert not empty_field.in_bounds(Vec2(150, 50))

    def test_is_free(self, field_with_block):
        assert field_with_block.is_free(Vec2(10, 10))
        assert not field_with_block.is_free(Vec2(50, 50))
        assert not field_with_block.is_free(Vec2(150, 50))

    def test_clamp(self, empty_field):
        assert empty_field.clamp(Vec2(150, -10)) == Vec2(100, 0)

    def test_nearest_free_returns_input_when_free(self, field_with_block):
        assert field_with_block.nearest_free(Vec2(10, 10)) == Vec2(10, 10)

    def test_nearest_free_escapes_obstacle(self, field_with_block):
        p = field_with_block.nearest_free(Vec2(50, 50))
        assert field_with_block.is_free(p)


class TestMotionQueries:
    def test_segment_blocked_by_obstacle(self, field_with_block):
        assert field_with_block.segment_blocked(Segment(Vec2(10, 50), Vec2(90, 50)))

    def test_segment_not_blocked_in_clear_area(self, field_with_block):
        assert not field_with_block.segment_blocked(Segment(Vec2(10, 10), Vec2(90, 10)))

    def test_segment_blocked_when_leaving_field(self, empty_field):
        assert empty_field.segment_blocked(Segment(Vec2(50, 50), Vec2(150, 50)))

    def test_first_obstacle_hit(self, field_with_block):
        hit = field_with_block.first_obstacle_hit(Segment(Vec2(10, 50), Vec2(90, 50)))
        assert hit is not None
        obstacle, point = hit
        assert point.almost_equals(Vec2(40, 50))

    def test_first_obstacle_hit_none(self, field_with_block):
        assert field_with_block.first_obstacle_hit(Segment(Vec2(0, 0), Vec2(10, 0))) is None

    def test_max_free_travel_unblocked(self, empty_field):
        travelled = empty_field.max_free_travel(Vec2(10, 10), Vec2(1, 0), 20.0)
        assert travelled == pytest.approx(20.0)

    def test_max_free_travel_stops_before_obstacle(self, field_with_block):
        travelled = field_with_block.max_free_travel(Vec2(10, 50), Vec2(1, 0), 80.0)
        assert travelled <= 30.0 + 1.0
        end = Vec2(10, 50) + Vec2(1, 0) * travelled
        assert field_with_block.is_free(end)

    def test_max_free_travel_stops_at_field_edge(self, empty_field):
        travelled = empty_field.max_free_travel(Vec2(90, 50), Vec2(1, 0), 50.0)
        assert travelled <= 10.0 + 1e-6


class TestBoundaryVisibility:
    def test_sees_field_boundary_near_edge(self, empty_field):
        segments = empty_field.boundary_segments_within(Circle(Vec2(5, 50), 10))
        assert len(segments) == 1
        assert all(abs(s.a.x) < 1e-6 and abs(s.b.x) < 1e-6 for s in segments)

    def test_sees_nothing_in_the_middle(self, empty_field):
        assert empty_field.boundary_segments_within(Circle(Vec2(50, 50), 10)) == []

    def test_sees_obstacle_boundary(self, field_with_block):
        segments = field_with_block.boundary_segments_within(Circle(Vec2(35, 50), 10))
        assert len(segments) >= 1

    def test_corner_sees_two_edges(self, empty_field):
        segments = empty_field.boundary_segments_within(Circle(Vec2(3, 3), 10))
        assert len(segments) == 2


class TestCoverage:
    def test_full_coverage(self, empty_field):
        assert empty_field.coverage_fraction([Vec2(50, 50)], 200.0, 5.0) == pytest.approx(1.0)

    def test_no_sensors_no_coverage(self, empty_field):
        assert empty_field.coverage_fraction([], 50.0, 5.0) == 0.0

    def test_quarter_disk_coverage(self, empty_field):
        cov = empty_field.coverage_fraction([Vec2(0, 0)], 50.0, 2.0)
        import math

        assert cov == pytest.approx(math.pi * 2500 / 4 / 10000, abs=0.02)

    def test_obstacle_area_excluded_from_denominator(self, field_with_block):
        # A sensor covering the whole field yields coverage 1.0 even though
        # obstacle cells are never counted as covered.
        assert field_with_block.coverage_fraction([Vec2(50, 10)], 500.0, 2.0) == pytest.approx(1.0)


class TestFreeSpaceConnectivity:
    def test_empty_field_connected(self, empty_field):
        assert empty_field.free_space_connected(resolution=10.0)

    def test_small_obstacle_keeps_connectivity(self, field_with_block):
        assert field_with_block.free_space_connected(resolution=5.0)

    def test_wall_disconnects_field(self):
        wall = Obstacle.rectangle(45, -1, 55, 101)
        field = Field(100.0, 100.0, [wall])
        assert not field.free_space_connected(resolution=5.0)
