"""Tests for the canonical experiment layouts."""

import random

import pytest

from repro.field import (
    CLUSTER_SIZE,
    FIELD_SIZE,
    clustered_initial_positions,
    corridor_field,
    obstacle_free_field,
    two_obstacle_field,
    uniform_initial_positions,
)


class TestCanonicalFields:
    def test_obstacle_free_dimensions(self):
        field = obstacle_free_field()
        assert field.width == FIELD_SIZE
        assert field.height == FIELD_SIZE
        assert field.obstacles == []

    def test_two_obstacle_field_has_two_obstacles(self):
        field = two_obstacle_field()
        assert len(field.obstacles) == 2

    def test_two_obstacle_field_remains_connected(self):
        assert two_obstacle_field().free_space_connected(resolution=25.0)

    def test_two_obstacle_field_scales(self):
        field = two_obstacle_field(500.0)
        assert field.width == 500.0
        for obstacle in field.obstacles:
            xmin, ymin, xmax, ymax = obstacle.bounding_box()
            assert 0 <= xmin <= xmax <= 500
            assert 0 <= ymin <= ymax <= 500

    def test_corridor_field_connected(self):
        assert corridor_field().free_space_connected(resolution=25.0)

    def test_corridor_field_has_two_walls(self):
        assert len(corridor_field().obstacles) == 2


class TestInitialDistributions:
    def test_clustered_positions_inside_cluster(self):
        rng = random.Random(1)
        positions = clustered_initial_positions(100, rng)
        assert len(positions) == 100
        for p in positions:
            assert 0 <= p.x <= CLUSTER_SIZE
            assert 0 <= p.y <= CLUSTER_SIZE

    def test_clustered_positions_avoid_obstacles(self):
        rng = random.Random(1)
        field = two_obstacle_field()
        positions = clustered_initial_positions(200, rng, field=field)
        assert all(field.is_free(p) for p in positions)

    def test_uniform_positions_span_field(self):
        rng = random.Random(1)
        field = obstacle_free_field()
        positions = uniform_initial_positions(300, rng, field)
        assert len(positions) == 300
        assert any(p.x > CLUSTER_SIZE for p in positions)
        assert any(p.y > CLUSTER_SIZE for p in positions)

    def test_uniform_positions_avoid_obstacles(self):
        rng = random.Random(3)
        field = two_obstacle_field()
        positions = uniform_initial_positions(200, rng, field)
        assert all(field.is_free(p) for p in positions)

    def test_deterministic_given_seed(self):
        a = clustered_initial_positions(20, random.Random(7))
        b = clustered_initial_positions(20, random.Random(7))
        assert a == b
