"""Parity of the vectorised field paths against their scalar references.

Two fast paths are pinned here:

* polygon obstacle rasterisation (``Field._rasterize_obstacles`` now
  classifies arbitrary polygons with the vectorised ray-cast of
  ``Polygon.contains_points``) against the per-point predicate scan;
* the batched ray query ``Field.max_free_travel_batch`` against the
  scalar ``Field.max_free_travel``, ray for ray.
"""

import math
import random

import numpy as np
import pytest

from repro.field import Field
from repro.field.obstacles import Obstacle
from repro.geometry import Vec2


def _polygon_cases():
    return [
        (
            "triangle",
            Obstacle.from_vertices(
                [Vec2(20, 20), Vec2(80, 30), Vec2(40, 85)]
            ),
        ),
        (
            "rotated-square",
            Obstacle.from_vertices(
                [Vec2(50, 10), Vec2(90, 50), Vec2(50, 90), Vec2(10, 50)]
            ),
        ),
        (
            "concave-L",
            Obstacle.from_vertices(
                [
                    Vec2(10, 10),
                    Vec2(70, 10),
                    Vec2(70, 30),
                    Vec2(30, 30),
                    Vec2(30, 70),
                    Vec2(10, 70),
                ]
            ),
        ),
        (
            "pentagon",
            Obstacle.from_vertices(
                [
                    Vec2(60 + 25 * math.cos(2 * math.pi * k / 5),
                         60 + 25 * math.sin(2 * math.pi * k / 5))
                    for k in range(5)
                ]
            ),
        ),
    ]


class TestPolygonRasterizationParity:
    @pytest.mark.parametrize(
        "name,obstacle", _polygon_cases(), ids=[c[0] for c in _polygon_cases()]
    )
    def test_matches_predicate_scan(self, name, obstacle):
        field = Field(120.0, 120.0, [obstacle])
        grid, mask = field.grid_and_obstacle_mask(resolution=3.0)
        reference = grid.mask_from_predicate(obstacle.contains)
        assert np.array_equal(mask, reference)

    def test_mixed_rectangles_and_polygons(self):
        obstacles = [
            Obstacle.rectangle(5, 5, 25, 40),
            _polygon_cases()[1][1],
            _polygon_cases()[2][1],
        ]
        field = Field(120.0, 120.0, obstacles)
        grid, mask = field.grid_and_obstacle_mask(resolution=2.5)
        reference = grid.mask_from_predicate(
            lambda p: any(ob.contains(p) for ob in obstacles)
        )
        assert np.array_equal(mask, reference)

    def test_contains_points_matches_scalar_randomized(self):
        rng = np.random.default_rng(11)
        for _, obstacle in _polygon_cases():
            px = rng.uniform(0, 120, 400)
            py = rng.uniform(0, 120, 400)
            batch = obstacle.contains_points(px, py)
            scalar = np.array(
                [obstacle.contains(Vec2(x, y)) for x, y in zip(px, py)]
            )
            assert np.array_equal(batch, scalar)


class TestMaxFreeTravelBatchParity:
    def _compare(self, field, rng, rays=300):
        px = rng.uniform(-5, field.width + 5, rays)
        py = rng.uniform(-5, field.height + 5, rays)
        angles = rng.uniform(0, 2 * math.pi, rays)
        dx, dy = np.cos(angles), np.sin(angles)
        # Mix zero directions and zero distances into the batch.
        dx[::17] = 0.0
        dy[::17] = 0.0
        dist = rng.uniform(0.0, 50.0, rays)
        dist[::13] = 0.0
        batch = field.max_free_travel_batch(px, py, dx, dy, dist)
        for i in range(rays):
            scalar = field.max_free_travel(
                Vec2(px[i], py[i]), Vec2(dx[i], dy[i]), float(dist[i])
            )
            assert batch[i] == pytest.approx(scalar, abs=1e-9), (
                f"ray {i}: batch={batch[i]!r} scalar={scalar!r}"
            )

    def test_open_field(self):
        self._compare(Field(200.0, 150.0), np.random.default_rng(3))

    def test_with_rectangle_obstacles(self):
        field = Field(
            200.0,
            150.0,
            [
                Obstacle.rectangle(40, 40, 90, 70),
                Obstacle.rectangle(120, 20, 150, 130),
            ],
        )
        self._compare(field, np.random.default_rng(5))

    def test_with_polygon_obstacle(self):
        field = Field(
            120.0,
            120.0,
            [_polygon_cases()[1][1]],
        )
        self._compare(field, np.random.default_rng(9))
