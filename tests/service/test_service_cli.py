"""``python -m repro.service`` submit / status / stats / gc."""

import json

import pytest

from repro.api import ScenarioSpec, SweepRunner, SweepSpec
from repro.service import RunStore
from repro.service.cli import main


def tiny_sweep():
    scenario = ScenarioSpec(
        field_size=250.0,
        sensor_count=10,
        duration=12.0,
        coverage_resolution=25.0,
        seed=3,
    )
    return SweepSpec.grid(
        "cli-sweep",
        scenario,
        schemes=("CPVF",),
        axes={"communication_range": [40.0, 55.0]},
    )


@pytest.fixture()
def sweep_file(tmp_path):
    path = tmp_path / "sweep.json"
    path.write_text(json.dumps(tiny_sweep().to_dict()))
    return path


class TestSubmit:
    def test_submit_computes_streams_and_persists(
        self, tmp_path, sweep_file, capsys
    ):
        store_dir = tmp_path / "store"
        out_file = tmp_path / "records.json"
        exit_code = main(
            [
                "submit", str(sweep_file),
                "--store", str(store_dir),
                "--out", str(out_file),
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "computed" in output and "cli-sweep: 2 records" in output
        assert output.count("cell ") == 2  # one progress line per cell
        assert len(RunStore(store_dir)) == 2

        payload = json.loads(out_file.read_text())
        assert payload["metrics"]["computed"] == 2
        from repro.api import RunRecord

        records = [RunRecord.from_dict(r) for r in payload["records"]]
        assert records == SweepRunner(jobs=1).run(tiny_sweep())

    def test_warm_resubmit_serves_everything_from_store(
        self, tmp_path, sweep_file, capsys
    ):
        store_dir = tmp_path / "store"
        assert main(["submit", str(sweep_file), "--store", str(store_dir),
                     "--quiet"]) == 0
        capsys.readouterr()
        assert main(["submit", str(sweep_file), "--store", str(store_dir),
                     "--quiet"]) == 0
        assert "2 store hits, 0 coalesced, 0 computed" in capsys.readouterr().out

    def test_refresh_recomputes_despite_warm_store(
        self, tmp_path, sweep_file, capsys
    ):
        store_dir = tmp_path / "store"
        main(["submit", str(sweep_file), "--store", str(store_dir), "--quiet"])
        capsys.readouterr()
        main(["submit", str(sweep_file), "--store", str(store_dir),
              "--refresh", "--quiet"])
        assert "0 store hits" in capsys.readouterr().out

    def test_sweep_and_experiment_are_mutually_exclusive(self, sweep_file):
        with pytest.raises(SystemExit):
            main(["submit", str(sweep_file), "--experiment", "fig9"])
        with pytest.raises(SystemExit):
            main(["submit"])


class TestStatus:
    def test_status_counts_missing_cells(self, tmp_path, sweep_file, capsys):
        store_dir = tmp_path / "store"
        # Cold store: everything missing, exit 1 signals "resume would work".
        assert main(["status", str(sweep_file), "--store", str(store_dir)]) == 1
        assert "0/2 cells cached" in capsys.readouterr().out

        # Persist one cell by hand: a partial (killed) sweep.
        store = RunStore(store_dir)
        store.put(SweepRunner(jobs=1).run(
            SweepSpec(name="one", runs=tiny_sweep().runs[:1]))[0])
        assert main(["status", str(sweep_file), "--store", str(store_dir),
                     "--verbose"]) == 1
        output = capsys.readouterr().out
        assert "1/2 cells cached" in output
        assert "cached" in output and "missing" in output

    def test_status_exits_zero_when_complete(self, tmp_path, sweep_file, capsys):
        store_dir = tmp_path / "store"
        main(["submit", str(sweep_file), "--store", str(store_dir), "--quiet"])
        capsys.readouterr()
        assert main(["status", str(sweep_file), "--store", str(store_dir)]) == 0
        assert "resume would compute 0" in capsys.readouterr().out


class TestMaintenance:
    def test_stats_json(self, tmp_path, sweep_file, capsys):
        store_dir = tmp_path / "store"
        main(["submit", str(sweep_file), "--store", str(store_dir), "--quiet"])
        capsys.readouterr()
        assert main(["stats", "--store", str(store_dir), "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 2
        assert stats["stale_entries"] == 0

    def test_gc_dry_run_then_real(self, tmp_path, sweep_file, capsys):
        store_dir = tmp_path / "store"
        main(["submit", str(sweep_file), "--store", str(store_dir), "--quiet"])
        store = RunStore(store_dir)
        RunStore(store_dir, schema_version=0).put(
            store.load(next(iter(store.fingerprints())))
        )
        capsys.readouterr()
        assert main(["gc", "--store", str(store_dir), "--dry-run"]) == 0
        assert "would remove 1 files" in capsys.readouterr().out
        assert (store_dir / "v0").exists()
        assert main(["gc", "--store", str(store_dir)]) == 0
        assert "removed 1 files" in capsys.readouterr().out
        assert not (store_dir / "v0").exists()
        assert len(store) == 2

    def test_store_is_required(self):
        with pytest.raises(SystemExit):
            main(["gc"])
