"""The shared counter schema: ServiceMetrics, store sidecar, stats --json."""

import json

from repro.network.messages import MessageType
from repro.network.stats import MessageStats
from repro.service import RunStore
from repro.service.service import ServiceMetrics
from repro.service.store import SERVICE_COUNTERS_FILENAME


class TestServiceMetricsCounters:
    def test_to_counters_uses_shared_schema(self):
        metrics = ServiceMetrics()
        metrics.jobs_submitted = 2
        metrics.cells_submitted = 10
        metrics.store_hits = 4
        metrics.inflight_hits = 1
        metrics.computed = 5
        metrics.failed = 0
        counters = metrics.to_counters()
        assert counters == {
            "service.jobs_submitted": 2,
            "service.cells_submitted": 10,
            "service.store_hits": 4,
            "service.inflight_hits": 1,
            "service.computed": 5,
            "service.failed": 0,
        }

    def test_message_stats_counters(self):
        stats = MessageStats()
        stats.record_transmissions(MessageType.NEIGHBOR_STATE, 2)
        counters = stats.to_counters()
        assert counters["messages.neighbor_state"] == 2
        assert counters["messages.total"] == 2
        # Zero-valued message types stay out of the schema.
        assert all(value > 0 for value in counters.values())


class TestStoreSidecar:
    def test_merge_accumulates_across_submits(self, tmp_path):
        store = RunStore(tmp_path)
        assert store.service_counters() == {}
        store.merge_service_counters({"service.computed": 3})
        merged = store.merge_service_counters(
            {"service.computed": 2, "service.store_hits": 1}
        )
        assert merged == {"service.computed": 5, "service.store_hits": 1}
        assert store.service_counters() == merged

    def test_sidecar_excluded_from_stats(self, tmp_path):
        store = RunStore(tmp_path)
        store.merge_service_counters({"service.computed": 1})
        stats = store.stats()
        assert stats.entries == 0
        assert stats.stale_entries == 0

    def test_sidecar_survives_gc(self, tmp_path):
        store = RunStore(tmp_path)
        store.merge_service_counters({"service.computed": 1})
        (store._version_dir / ".counters.orphan.tmp").write_text("x")
        report = store.gc()
        assert report.removed_files == 1
        assert store.service_counters() == {"service.computed": 1}

    def test_corrupt_sidecar_reads_empty(self, tmp_path):
        store = RunStore(tmp_path)
        store._version_dir.mkdir(parents=True)
        (store._version_dir / SERVICE_COUNTERS_FILENAME).write_text("{broken")
        assert store.service_counters() == {}


class TestStatsCli:
    def test_stats_json_reports_counters(self, tmp_path, capsys):
        from repro.service.cli import main

        store = RunStore(tmp_path)
        store.merge_service_counters({"service.computed": 7})
        assert main(["stats", "--store", str(tmp_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counters"] == {"service.computed": 7}
        assert payload["entries"] == 0

    def test_stats_text_lists_counters(self, tmp_path, capsys):
        from repro.service.cli import main

        store = RunStore(tmp_path)
        store.merge_service_counters({"service.computed": 7})
        assert main(["stats", "--store", str(tmp_path)]) == 0
        assert "service.computed: 7" in capsys.readouterr().out
