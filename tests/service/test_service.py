"""The async sweep service: determinism, dedup, resume, observability."""

import asyncio

import pytest

from repro.api import RunSpec, ScenarioSpec, SweepRunner, SweepSpec
from repro.service import ProcessWorkerPool, RunStore, SweepService


def tiny_scenario(**overrides):
    defaults = dict(
        field_size=250.0,
        sensor_count=10,
        duration=12.0,
        coverage_resolution=25.0,
        seed=3,
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


def tiny_sweep(name="svc", values=(40.0, 55.0), **scenario_overrides):
    return SweepSpec.grid(
        name,
        tiny_scenario(**scenario_overrides),
        schemes=("CPVF",),
        axes={"communication_range": list(values)},
    )


def drive(coro):
    return asyncio.run(coro)


@pytest.fixture(scope="module")
def serial_records():
    return SweepRunner(jobs=1).run(tiny_sweep())


class TestDeterminism:
    def test_cold_service_matches_serial_runner(self, tmp_path, serial_records):
        async def scenario():
            service = SweepService(store=str(tmp_path / "store"))
            try:
                records = await service.run(tiny_sweep())
                await service.drain()
                return records, service.metrics
            finally:
                service.close()

        records, metrics = drive(scenario())
        assert records == serial_records
        assert metrics.computed == len(records)
        assert metrics.store_hits == 0

    def test_execute_single_spec(self, serial_records):
        async def scenario():
            service = SweepService()
            try:
                spec = tiny_sweep().runs[0]
                return await service.execute(spec)
            finally:
                service.close()

        assert drive(scenario()) == serial_records[0]

    def test_process_pool_matches_inline(self, tmp_path, serial_records):
        async def scenario():
            pool = ProcessWorkerPool(max_workers=2)
            service = SweepService(store=str(tmp_path / "store"), pool=pool)
            try:
                return await service.run(tiny_sweep())
            finally:
                service.close()

        assert drive(scenario()) == serial_records


class TestDedupAndResume:
    def test_overlapping_jobs_compute_shared_cells_once(self, serial_records):
        async def scenario():
            service = SweepService()  # no store: pure in-flight dedup
            try:
                jobs = [service.submit(tiny_sweep()) for _ in range(3)]
                results = await asyncio.gather(*(job.result() for job in jobs))
                await service.drain()
                return results, service.metrics
            finally:
                service.close()

        results, metrics = drive(scenario())
        assert all(records == serial_records for records in results)
        assert metrics.computed == len(serial_records)
        assert metrics.inflight_hits == 2 * len(serial_records)

    def test_warm_store_recomputes_nothing(self, tmp_path, serial_records):
        store = RunStore(tmp_path / "store")
        for record in serial_records:
            store.put(record)

        async def scenario():
            service = SweepService(store=store)
            try:
                records = await service.run(tiny_sweep())
                return records, service.metrics
            finally:
                service.close()

        records, metrics = drive(scenario())
        assert records == serial_records
        assert metrics.computed == 0
        assert metrics.store_hits == len(serial_records)
        assert metrics.cache_hit_rate() == 1.0

    def test_partial_store_recomputes_only_missing_cells(
        self, tmp_path, serial_records
    ):
        store = RunStore(tmp_path / "store")
        store.put(serial_records[0])

        async def scenario():
            service = SweepService(store=store)
            try:
                records = await service.run(tiny_sweep())
                await service.drain()
                return records, service.metrics
            finally:
                service.close()

        records, metrics = drive(scenario())
        assert records == serial_records
        assert metrics.store_hits == 1
        assert metrics.computed == len(serial_records) - 1

    def test_refresh_mode_recomputes_but_still_persists(
        self, tmp_path, serial_records
    ):
        store = RunStore(tmp_path / "store")
        for record in serial_records:
            store.put(record)

        async def scenario():
            service = SweepService(store=store, reuse=False)
            try:
                records = await service.run(tiny_sweep())
                await service.drain()
                return records, service.metrics
            finally:
                service.close()

        records, metrics = drive(scenario())
        assert records == serial_records
        assert metrics.store_hits == 0
        assert metrics.computed == len(serial_records)
        assert len(store) == len(serial_records)

    def test_write_through_persists_every_cell(self, tmp_path, serial_records):
        async def scenario():
            service = SweepService(store=str(tmp_path / "store"))
            try:
                await service.run(tiny_sweep())
                await service.drain()
            finally:
                service.close()

        drive(scenario())
        store = RunStore(tmp_path / "store")
        assert len(store) == len(serial_records)
        for record in serial_records:
            assert store.get(record.spec) == record


class TestObservability:
    def test_event_stream_replays_backlog(self, serial_records):
        async def scenario():
            service = SweepService()
            try:
                job = service.submit(tiny_sweep())
                await job.result()
                # Subscribing after completion still yields the full stream.
                return [event async for event in job.events()], job.status()
            finally:
                service.close()

        events, status = drive(scenario())
        done = [e for e in events if e.status == "done"]
        assert len(done) == len(serial_records)
        assert {e.status for e in events} <= {"scheduled", "done"}
        assert all(e.source == "computed" for e in done)
        assert status["finished"] is True
        assert status["completed"] == len(serial_records)
        assert status["by_source"]["computed"] == len(serial_records)

    def test_metrics_export_shape(self):
        async def scenario():
            service = SweepService()
            try:
                await service.run(tiny_sweep())
                return service.metrics.to_dict()
            finally:
                service.close()

        exported = drive(scenario())
        assert exported["jobs_submitted"] == 1
        assert exported["cells_submitted"] == 2
        assert exported["max_queue_depth"] >= 1
        assert exported["queue_depth"] == 0
        assert exported["compute_seconds"] > 0


class TestFailureAndCancellation:
    def test_failed_cell_fails_the_job_and_counts(self):
        bad = RunSpec(scenario=tiny_scenario(), scheme="CPVF",
                      scheme_params={"mode": "no-such-mode"})

        async def scenario():
            service = SweepService()
            try:
                job = service.submit([bad])
                with pytest.raises(Exception):
                    await job.result()
                events = [event async for event in job.events()]
                return service.metrics, events
            finally:
                service.close()

        metrics, events = drive(scenario())
        assert metrics.failed == 1
        assert events[-1].status == "failed"
        assert events[-1].error

    def test_cancel_kills_the_job_not_the_store(self, tmp_path):
        async def scenario():
            service = SweepService(store=str(tmp_path / "store"))
            try:
                job = service.submit(tiny_sweep())
                assert job.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await job.result()
                # Shielded computations finish and write through.
                await service.drain()
            finally:
                service.close()

        drive(scenario())
