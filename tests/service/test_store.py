"""The content-addressed run store: layout, round-trips, GC."""

import json

import pytest

from repro.api import RunSpec, ScenarioSpec, execute_run
from repro.service import GCReport, RunStore, StoreStats


def tiny_spec(**overrides):
    scenario_kwargs = dict(
        field_size=250.0,
        sensor_count=10,
        duration=12.0,
        coverage_resolution=25.0,
        seed=3,
    )
    scenario_kwargs.update(overrides.pop("scenario_overrides", {}))
    defaults = dict(scenario=ScenarioSpec(**scenario_kwargs), scheme="CPVF")
    defaults.update(overrides)
    return RunSpec(**defaults)


@pytest.fixture(scope="module")
def record():
    return execute_run(tiny_spec())


class TestRoundTrip:
    def test_put_then_get_returns_equal_record(self, tmp_path, record):
        store = RunStore(tmp_path)
        fingerprint = store.put(record)
        assert fingerprint == record.spec.fingerprint()
        assert store.get(record.spec) == record

    def test_layout_is_version_and_shard_partitioned(self, tmp_path, record):
        store = RunStore(tmp_path)
        fp = store.put(record)
        path = store.path_for(fp)
        assert path.exists()
        assert path == tmp_path / f"v{store.schema_version}" / fp[:2] / f"{fp}.json"

    def test_contains_accepts_spec_or_fingerprint(self, tmp_path, record):
        store = RunStore(tmp_path)
        assert record.spec not in store
        fp = store.put(record)
        assert record.spec in store
        assert fp in store
        assert len(store) == 1
        assert list(store.fingerprints()) == [fp]

    def test_hit_rebinds_the_requesting_spec(self, tmp_path, record):
        """Tags are bookkeeping: a differently-tagged client must get the
        cached record back carrying *its* spec, as execute_run would."""
        store = RunStore(tmp_path)
        store.put(record)
        tagged = tiny_spec(tags={"client": "other"})
        hit = store.get(tagged)
        assert hit.spec == tagged
        assert hit.coverage == record.coverage

    def test_put_is_idempotent(self, tmp_path, record):
        store = RunStore(tmp_path)
        store.put(record)
        store.put(record)
        assert len(store) == 1
        assert store.get(record.spec) == record


class TestMisses:
    def test_load_missing_is_none(self, tmp_path):
        assert RunStore(tmp_path).load("00" * 20) is None

    def test_torn_write_reads_as_miss(self, tmp_path, record):
        store = RunStore(tmp_path)
        fp = store.put(record)
        store.path_for(fp).write_text('{"schema": 1, "reco')
        assert store.load(fp) is None
        # The atomic put repairs the entry in place.
        store.put(record)
        assert store.get(record.spec) == record

    def test_other_schema_version_is_unreachable(self, tmp_path, record):
        RunStore(tmp_path, schema_version=0).put(record)
        store = RunStore(tmp_path)
        assert record.spec not in store
        assert store.get(record.spec) is None
        assert len(store) == 0


class TestMaintenance:
    def test_stats_split_live_from_stale(self, tmp_path, record):
        store = RunStore(tmp_path)
        store.put(record)
        RunStore(tmp_path, schema_version=0).put(record)
        stats = store.stats()
        assert isinstance(stats, StoreStats)
        assert stats.entries == 1
        assert stats.bytes > 0
        assert stats.stale_entries == 1
        assert stats.stale_bytes > 0
        assert json.dumps(stats.to_dict())

    def test_gc_reclaims_stale_versions_and_tmp_files(self, tmp_path, record):
        store = RunStore(tmp_path)
        fp = store.put(record)
        RunStore(tmp_path, schema_version=0).put(record)
        orphan = store.path_for(fp).parent / ".deadbeef.tmp"
        orphan.write_text("killed writer leftovers")

        dry = store.gc(dry_run=True)
        assert isinstance(dry, GCReport)
        assert dry.dry_run and dry.removed_files == 2
        assert orphan.exists()

        report = store.gc()
        assert report.removed_files == 2
        assert report.removed_bytes > 0
        assert report.kept_entries == 1
        assert not orphan.exists()
        assert not (tmp_path / "v0").exists()
        assert store.get(record.spec) == record

    def test_gc_on_empty_store_is_a_noop(self, tmp_path):
        report = RunStore(tmp_path / "nowhere").gc()
        assert report.removed_files == 0
        assert report.kept_entries == 0
