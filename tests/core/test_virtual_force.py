"""Tests for the virtual-force model."""

import pytest
from hypothesis import given, strategies as st

from repro.core import VirtualForceModel
from repro.field import Field, Obstacle
from repro.geometry import Vec2


def make_model(repulsion=80.0, obstacle=40.0) -> VirtualForceModel:
    return VirtualForceModel(repulsion_distance=repulsion, obstacle_distance=obstacle)


class TestSensorForces:
    def test_close_neighbor_repels(self):
        force = make_model().force_from_sensor(Vec2(0, 0), Vec2(10, 0))
        assert force.x < 0
        assert force.y == pytest.approx(0.0)

    def test_far_neighbor_exerts_no_force(self):
        force = make_model(repulsion=80.0).force_from_sensor(Vec2(0, 0), Vec2(100, 0))
        assert force == Vec2(0, 0)

    def test_force_magnitude_decreases_with_distance(self):
        model = make_model()
        near = model.force_from_sensor(Vec2(0, 0), Vec2(10, 0)).norm()
        far = model.force_from_sensor(Vec2(0, 0), Vec2(70, 0)).norm()
        assert near > far > 0

    def test_coincident_sensors_get_nonzero_push(self):
        force = make_model().force_from_sensor(Vec2(5, 5), Vec2(5, 5))
        assert force.norm() > 0

    def test_symmetric_neighbors_cancel(self):
        model = make_model()
        resultant = model.resultant(Vec2(0, 0), [Vec2(10, 0), Vec2(-10, 0)])
        assert resultant.norm() == pytest.approx(0.0, abs=1e-9)


class TestObstacleForces:
    def test_obstacle_repels_nearby_sensor(self):
        field = Field(200, 200, [Obstacle.rectangle(80, 80, 120, 120)])
        model = make_model(obstacle=40.0)
        force = model.force_from_obstacles(Vec2(70, 100), field)
        assert force.x < 0  # pushed away from the obstacle (toward -x)

    def test_far_obstacle_is_ignored(self):
        field = Field(400, 400, [Obstacle.rectangle(300, 300, 350, 350)])
        model = make_model(obstacle=40.0)
        force = model.force_from_obstacles(Vec2(200, 200), field)
        assert force == Vec2(0, 0)

    def test_field_boundary_pushes_inward(self):
        field = Field(200, 200)
        model = make_model(obstacle=40.0)
        force = model.force_from_obstacles(Vec2(5, 100), field)
        assert force.x > 0
        force_top = model.force_from_obstacles(Vec2(100, 195), field)
        assert force_top.y < 0

    def test_center_of_empty_field_is_force_free(self):
        field = Field(200, 200)
        force = make_model(obstacle=40.0).force_from_obstacles(Vec2(100, 100), field)
        assert force == Vec2(0, 0)

    def test_sensor_inside_obstacle_is_pushed_out(self):
        field = Field(200, 200, [Obstacle.rectangle(80, 80, 120, 120)])
        force = make_model().force_from_obstacles(Vec2(100, 100), field)
        assert force.norm() > 0


class TestResultantDirection:
    def test_direction_is_unit_length(self):
        model = make_model()
        direction = model.direction(Vec2(0, 0), [Vec2(10, 0), Vec2(0, 15)])
        assert direction.norm() == pytest.approx(1.0)

    def test_direction_zero_at_equilibrium(self):
        model = make_model()
        direction = model.direction(Vec2(0, 0), [])
        assert direction == Vec2(0, 0)

    @given(
        st.floats(min_value=-50, max_value=50),
        st.floats(min_value=-50, max_value=50),
    )
    def test_single_neighbor_force_points_away(self, dx, dy):
        if abs(dx) < 1e-6 and abs(dy) < 1e-6:
            return
        model = make_model()
        neighbor = Vec2(dx, dy)
        force = model.force_from_sensor(Vec2(0, 0), neighbor)
        if force.norm() > 0:
            # The force must point away from the neighbour.
            assert force.dot(Vec2(0, 0) - neighbor) > 0
