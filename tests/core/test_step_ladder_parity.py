"""Parity tests for the CPVF step-ladder fast paths.

``max_valid_step`` (float core), ``max_valid_step_points``
(stationary-links variant) and the seed-faithful
``max_valid_step_reference`` all claim to return the same ladder
decision; the vectorized ``_try_parent_change`` scan claims to pick the
same (step, parent) as the seed per-candidate ladder.  These tests pin
those equivalences with randomized trials so an edit to one copy cannot
silently diverge from the others.
"""

import copy
import random

import pytest

from repro.core.connectivity import (
    NeighborMotion,
    max_valid_step,
    max_valid_step_points,
    max_valid_step_reference,
)
from repro.core.cpvf import CPVFScheme
from repro.field import Field
from repro.geometry import Vec2
from repro.sim import SimulationConfig, World


def random_motion(rng, stationary):
    current = Vec2(rng.uniform(-80, 80), rng.uniform(-80, 80))
    if stationary:
        return NeighborMotion.stationary(current)
    planned = Vec2(rng.uniform(-80, 80), rng.uniform(-80, 80))
    return NeighborMotion(current, planned)


class TestLadderParity:
    @pytest.mark.parametrize("trial", range(25))
    def test_fast_ladder_matches_reference(self, trial):
        rng = random.Random(trial)
        for _ in range(200):
            position = Vec2(rng.uniform(-50, 50), rng.uniform(-50, 50))
            direction = Vec2(rng.uniform(-1, 1), rng.uniform(-1, 1))
            max_step = rng.choice([0.0, rng.uniform(0.1, 30.0)])
            rc = rng.uniform(5.0, 70.0)
            neighbors = [
                random_motion(rng, rng.random() < 0.6)
                for _ in range(rng.randint(0, 4))
            ]
            expected = max_valid_step_reference(
                position, direction, max_step, neighbors, rc
            )
            assert max_valid_step(
                position, direction, max_step, neighbors, rc
            ) == expected
            if all(nb.current == nb.planned_end for nb in neighbors):
                links = [(nb.current.x, nb.current.y) for nb in neighbors]
                assert max_valid_step_points(
                    position.x,
                    position.y,
                    direction.x,
                    direction.y,
                    max_step,
                    links,
                    rc,
                ) == expected

    def test_degenerate_direction_and_zero_step(self):
        pos = Vec2(1.0, 2.0)
        nb = [NeighborMotion.stationary(Vec2(3.0, 2.0))]
        for args in [
            (pos, Vec2(0.0, 0.0), 10.0, nb, 5.0),
            (pos, Vec2(1e-12, 0.0), 10.0, nb, 5.0),
            (pos, Vec2(1.0, 0.0), 0.0, nb, 5.0),
        ]:
            assert max_valid_step(*args) == max_valid_step_reference(*args) == 0.0


class TestParentChangeParity:
    @pytest.mark.parametrize("trial", range(12))
    def test_fraction_outer_scan_matches_seed_ladder(self, trial):
        """Both parent-change paths pick the same (step, parent)."""
        rng = random.Random(100 + trial)
        n = 14
        config = SimulationConfig(
            sensor_count=n,
            communication_range=rng.uniform(25.0, 50.0),
            sensing_range=30.0,
            duration=5.0,
            seed=trial,
            clustered_start=False,
        )
        positions = [
            Vec2(rng.uniform(0, 80), rng.uniform(0, 80)) for _ in range(n)
        ]
        world = World.create(config, Field(200.0, 200.0), positions)
        scheme = CPVFScheme()
        scheme.initialize(world)
        table = world.neighbor_table()
        moved = False
        for sensor in world.sensors:
            if not sensor.is_connected():
                continue
            direction = Vec2(rng.uniform(-1, 1), rng.uniform(-1, 1)).normalized()
            if direction.norm() == 0.0:
                continue
            fast_world = copy.deepcopy(world)
            seed_world = copy.deepcopy(world)
            fast_scheme = CPVFScheme(vectorized=True)
            seed_scheme = CPVFScheme(vectorized=False)
            fast_step = fast_scheme._try_parent_change(
                fast_world, fast_world.sensor(sensor.sensor_id), direction, table
            )
            seed_step = seed_scheme._try_parent_change(
                seed_world, seed_world.sensor(sensor.sensor_id), direction, table
            )
            assert fast_step == seed_step
            assert fast_world.tree.parent_of(sensor.sensor_id) == (
                seed_world.tree.parent_of(sensor.sensor_id)
            )
            moved = True
        assert moved  # the layout produced at least one comparable sensor
