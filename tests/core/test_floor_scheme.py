"""Integration-style tests for the FLOOR scheme."""

import pytest

from repro.core import FloorScheme
from repro.experiments.common import SMOKE_SCALE, make_config, make_world
from repro.sensors import SensorState
from repro.sim import SimulationEngine


def run_floor(rc=60.0, rs=40.0, with_obstacles=False, seed=1, **scheme_kwargs):
    config = make_config(
        SMOKE_SCALE, communication_range=rc, sensing_range=rs, seed=seed
    )
    world = make_world(config, SMOKE_SCALE, with_obstacles=with_obstacles)
    scheme = FloorScheme(**scheme_kwargs)
    engine = SimulationEngine(world, scheme, trace_every=20)
    return engine.run(), world, scheme


class TestFloorEndToEnd:
    def test_coverage_improves_over_initial_layout(self):
        config = make_config(SMOKE_SCALE, seed=2)
        world = make_world(config, SMOKE_SCALE)
        initial_coverage = world.coverage()
        result = SimulationEngine(world, FloorScheme()).run()
        assert result.final_coverage > initial_coverage

    def test_all_sensors_end_in_a_floor_state(self):
        result, world, scheme = run_floor(seed=3)
        allowed = {
            SensorState.FIXED,
            SensorState.MOVABLE,
            SensorState.RELOCATING,
            SensorState.CONNECTED,
        }
        connected_states = {s.state for s in world.sensors if s.is_connected()}
        assert connected_states <= allowed

    def test_fixed_sensors_are_registered(self, ):
        result, world, scheme = run_floor(seed=4)
        registry = scheme._registry
        for sensor in world.sensors:
            if sensor.state is SensorState.FIXED:
                assert registry.floor_of(sensor.sensor_id) is not None

    def test_sensors_stay_in_free_space_with_obstacles(self):
        result, world, _ = run_floor(with_obstacles=True, seed=5)
        for sensor in world.sensors:
            assert world.field.is_free(sensor.position)

    def test_messages_are_recorded(self):
        result, _, _ = run_floor(seed=6)
        assert result.total_messages > 0

    def test_larger_ttl_generates_more_messages(self):
        low, _, _ = run_floor(seed=7, invitation_ttl=2)
        high, _, _ = run_floor(seed=7, invitation_ttl=12)
        assert high.total_messages > low.total_messages

    def test_moving_distance_below_field_diameter(self):
        result, world, _ = run_floor(seed=8)
        diameter = (world.field.width**2 + world.field.height**2) ** 0.5
        # No sensor should travel more than a few times the field diagonal.
        for sensor in world.sensors:
            assert sensor.moving_distance <= 3 * diameter

    def test_fixed_sensors_gravitate_to_floor_lines(self):
        result, world, scheme = run_floor(seed=9)
        floors = scheme._floors
        relocated = [
            s
            for s in world.sensors
            if s.state is SensorState.FIXED and s.moving_distance > 1.0
        ]
        if not relocated:
            pytest.skip("no sensor relocated in this draw")
        near_structure = sum(
            1
            for s in relocated
            if floors.distance_to_floor_line(s.position) <= world.config.sensing_range
        )
        assert near_structure == len(relocated)

    def test_convergence_is_reported_when_expansion_finishes(self):
        # With very few sensors the searchers run out of movable sensors but
        # keep advertising, so convergence is not guaranteed; this just
        # checks the has_converged contract is consistent.
        result, world, scheme = run_floor(seed=10)
        if result.converged_at is not None:
            assert not scheme._relocations

    def test_small_rc_still_produces_positive_coverage(self):
        result, _, _ = run_floor(rc=20.0, rs=40.0, seed=11)
        assert result.final_coverage > 0.05


class TestSeedFallback:
    def test_expansion_always_has_at_least_one_fixed_seed(self):
        """Even when every sensor volunteers as movable (dense cluster), the
        scheme must keep one anchored sensor so expansion can start."""
        config = make_config(SMOKE_SCALE, seed=7)
        world = make_world(config, SMOKE_SCALE)
        scheme = FloorScheme()
        scheme.initialize(world)
        for period in range(10):
            world.period_index = period
            scheme.step(world)
            if scheme._phase == 3:
                break
        assert scheme._phase == 3
        fixed = [s for s in world.sensors if s.state is SensorState.FIXED]
        assert fixed, "phase 2 must leave at least one fixed sensor as expansion seed"

    def test_expansion_makes_progress_from_dense_cluster(self):
        config = make_config(SMOKE_SCALE, seed=7)
        world = make_world(config, SMOKE_SCALE)
        initial = world.coverage()
        result = SimulationEngine(world, FloorScheme()).run()
        assert result.periods_executed > 5
        assert result.final_coverage > initial


class TestFloorBeatsCPVFWhenItShould:
    def test_floor_outperforms_cpvf_with_small_rc(self):
        """The paper's headline claim (Figs 3b vs 8b) at smoke scale."""
        from repro.core import CPVFScheme

        config = make_config(SMOKE_SCALE, communication_range=25.0, sensing_range=40.0, seed=12)
        world_floor = make_world(config, SMOKE_SCALE)
        floor_result = SimulationEngine(world_floor, FloorScheme()).run()

        world_cpvf = make_world(config, SMOKE_SCALE)
        cpvf_result = SimulationEngine(world_cpvf, CPVFScheme()).run()

        assert floor_result.final_coverage >= cpvf_result.final_coverage


class TestObstacleExitCorrection:
    """Regression: a sensor in BUG2 transit must never end a run inside an
    obstacle (ROADMAP repro: two-obstacle field at 400 m, n=60, rc=60,
    rs=40, seed=17, 120 s — sensors 44/54 used to finish in the interior
    of the "right" obstacle while RELOCATING)."""

    def test_relocating_sensors_exit_obstacles(self):
        from repro.field import two_obstacle_field
        from repro.sim import SimulationConfig, World

        config = SimulationConfig(
            sensor_count=60,
            communication_range=60.0,
            sensing_range=40.0,
            duration=120.0,
            seed=17,
        )
        world = World.create(config, two_obstacle_field(400.0))
        SimulationEngine(world, FloorScheme(), keep_world=True).run()
        stuck = [
            s.sensor_id for s in world.sensors if not world.field.is_free(s.position)
        ]
        assert stuck == []

    def test_connection_transit_exits_obstacles(self):
        """Phase-1 connection walks cut maze-wall corners the same way
        (found by the bench-scale maze-hotspot invariant sweep: sensors
        20/33 used to finish MOVING_TO_CONNECT inside a wall)."""
        from repro.experiments.common import BENCH_SCALE
        from repro.scenarios import DEFAULT_SUITE

        spec = DEFAULT_SUITE.get("maze-hotspot").spec(BENCH_SCALE)
        world = spec.build_world()
        SimulationEngine(world, FloorScheme(), keep_world=True).run()
        stuck = [
            s.sensor_id for s in world.sensors if not world.field.is_free(s.position)
        ]
        assert stuck == []
