"""The batched CPVF kernel: coloring, ladder parity, message accounting.

The conflict-freedom of the tree-level coloring and the decision parity
of the array ladder are what make ``mode="batched"`` semantically
faithful; this module pins both, plus the structural message-accounting
identity and the plateau agreement between the batched and sequential
dynamics.
"""

import copy
import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CPVF_MODES,
    CPVFScheme,
    TreeSchedule,
    batched_ladder_steps,
    tree_level_colors,
)
from repro.core.connectivity import max_valid_step_points
from repro.core.lazy import LazyMovementController
from repro.core.oscillation import OscillationAvoidance
from repro.core.virtual_force import VirtualForceModel
from repro.experiments.common import (
    ExperimentScale,
    SMOKE_SCALE,
    make_config,
    make_world,
)
from repro.mobility import Bug2Planner, Handedness
from repro.network import BASE_STATION_ID, ConnectivityTree
from repro.sim import SimulationEngine


def random_tree(rng: random.Random, n: int) -> ConnectivityTree:
    """A random tree over ids ``0..n-1`` grown by uniform attachment."""
    tree = ConnectivityTree()
    order = list(range(n))
    rng.shuffle(order)
    attached = []
    for node in order:
        parent = BASE_STATION_ID if not attached else rng.choice(
            attached + [BASE_STATION_ID]
        )
        tree.attach(node, parent)
        attached.append(node)
    return tree


class TestTreeLevelColors:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6), st.integers(1, 60))
    def test_no_same_color_tree_edge(self, seed, n):
        """Same color implies no parent/child edge, for any random tree."""
        tree = random_tree(random.Random(seed), n)
        colors = tree_level_colors(tree, n)
        for child, parent in tree.parent.items():
            assert colors[child] in (0, 1)
            if parent != BASE_STATION_ID:
                assert colors[child] != colors[parent], (
                    f"tree edge {parent}->{child} within color "
                    f"{colors[child]}"
                )

    def test_base_station_children_are_color_one(self):
        tree = ConnectivityTree()
        tree.attach(0, BASE_STATION_ID)
        tree.attach(1, 0)
        tree.attach(2, 1)
        colors = tree_level_colors(tree, 3)
        assert list(colors) == [1, 0, 1]

    def test_outside_tree_is_uncolored(self):
        tree = ConnectivityTree()
        tree.attach(0, BASE_STATION_ID)
        colors = tree_level_colors(tree, 3)
        assert colors[0] == 1 and colors[1] == -1 and colors[2] == -1

    def test_schedule_links_match_tree(self):
        rng = random.Random(7)
        tree = random_tree(rng, 25)
        schedule = TreeSchedule.build(tree, 25)
        for sid in range(25):
            nodes = schedule.link_nodes[
                schedule.link_offsets[sid]:schedule.link_offsets[sid + 1]
            ]
            expected = {tree.parent[sid]} | tree.children_of(sid)
            assert set(nodes.tolist()) == expected
        # Same-color classes share no link: every link node of a sensor
        # has the opposite parity.
        colors = schedule.colors
        for sid in range(25):
            for node in schedule.link_nodes[
                schedule.link_offsets[sid]:schedule.link_offsets[sid + 1]
            ]:
                if node != BASE_STATION_ID:
                    assert colors[node] != colors[sid]

    def test_schedule_cache_invalidates_on_reparent(self):
        config = make_config(SMOKE_SCALE, seed=5)
        world = make_world(config, SMOKE_SCALE)
        scheme = CPVFScheme(mode="batched")
        scheme.initialize(world)
        first = scheme._get_schedule(world)
        assert scheme._get_schedule(world) is first  # cached
        members = world.tree.members()
        # Reparent some member under another non-descendant member.
        moved = None
        for sid in members:
            for new_parent in members:
                if new_parent == sid or new_parent == world.tree.parent_of(sid):
                    continue
                if sid not in world.tree.subtree_of(new_parent) and (
                    new_parent not in world.tree.subtree_of(sid)
                ):
                    world.reparent_in_tree(sid, new_parent)
                    moved = sid
                    break
            if moved is not None:
                break
        assert moved is not None
        second = scheme._get_schedule(world)
        assert second is not first
        assert second.version == world.tree.version


class TestBatchedLadderParity:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_matches_scalar_ladder(self, seed):
        """The array ladder returns the scalar decision, sensor by sensor."""
        rng = np.random.default_rng(seed)
        count = int(rng.integers(1, 30))
        px = rng.uniform(0, 500, count)
        py = rng.uniform(0, 500, count)
        angles = rng.uniform(0, 2 * math.pi, count)
        ux, uy = np.cos(angles), np.sin(angles)
        max_step = float(rng.uniform(0.5, 5.0))
        rc = float(rng.uniform(20.0, 80.0))
        link_counts = rng.integers(0, 4, count)
        owners = np.repeat(np.arange(count), link_counts)
        # Mix of in-range and (sometimes) out-of-range links.
        radii = rng.uniform(0.0, rc * 1.2, owners.size)
        link_angles = rng.uniform(0, 2 * math.pi, owners.size)
        lx = px[owners] + radii * np.cos(link_angles)
        ly = py[owners] + radii * np.sin(link_angles)
        steps = batched_ladder_steps(
            px, py, ux, uy, max_step, rc, owners, lx, ly
        )
        for i in range(count):
            mask = owners == i
            links = list(zip(lx[mask].tolist(), ly[mask].tolist()))
            expected = max_valid_step_points(
                px[i], py[i], ux[i], uy[i], max_step, links, rc
            )
            assert steps[i] == expected

    def test_zero_direction_is_zero_step(self):
        steps = batched_ladder_steps(
            np.array([10.0]),
            np.array([10.0]),
            np.array([0.0]),
            np.array([0.0]),
            2.0,
            60.0,
            np.array([], dtype=np.intp),
            np.array([]),
            np.array([]),
        )
        assert steps[0] == 0.0

    def test_unconstrained_sensor_gets_full_step(self):
        steps = batched_ladder_steps(
            np.array([10.0]),
            np.array([10.0]),
            np.array([1.0]),
            np.array([0.0]),
            2.0,
            60.0,
            np.array([], dtype=np.intp),
            np.array([]),
            np.array([]),
        )
        assert steps[0] == 2.0


def _sequential_twin(world, config):
    """A sequential scheme wired to an already-initialized world copy."""
    scheme = CPVFScheme(mode="sequential", allow_parent_change=False)
    scheme._planner = Bug2Planner(world.field, Handedness.RIGHT)
    scheme._forces = VirtualForceModel(
        repulsion_distance=2.0 * config.sensing_range,
        obstacle_distance=config.sensing_range,
    )
    scheme._lazy = LazyMovementController(world.routing)
    scheme._avoidance = OscillationAvoidance(
        max_step=config.max_step, delta=None
    )
    return scheme


class TestMessageParity:
    def test_batched_message_counts_match_sequential_per_period(self):
        """From identical world snapshots, one batched period records the
        same transmissions a sequential period does.

        Without parent changes the accounting is purely structural (one
        NEIGHBOR_STATE per preserved link of every sensor with non-zero
        force), so the totals must be identical period for period; with
        parent changes the two modes reshape the tree mid-period in
        different orders and the comparison is only distributional.
        """
        config = make_config(SMOKE_SCALE, seed=3)
        world = make_world(config, SMOKE_SCALE)
        scheme = CPVFScheme(mode="batched", allow_parent_change=False)
        scheme.initialize(world)
        for period in range(40):
            snap = copy.deepcopy(world)
            twin = _sequential_twin(snap, config)
            before = snap.stats.total()
            twin.step(snap)
            sequential_delta = snap.stats.total() - before
            before = world.stats.total()
            scheme.step(world)
            batched_delta = world.stats.total() - before
            assert batched_delta == sequential_delta, (
                f"period {period}: batched recorded {batched_delta} "
                f"transmissions, sequential {sequential_delta}"
            )

    def test_first_period_parity_with_parent_changes(self):
        """Starting from one initialized state, the first coverage period
        records identical totals in both modes (no reparent happens that
        early in the smoke scenario)."""
        results = {}
        for mode in ("sequential", "batched"):
            config = make_config(SMOKE_SCALE, seed=3)
            world = make_world(config, SMOKE_SCALE)
            scheme = CPVFScheme(mode=mode)
            scheme.initialize(world)
            before = world.stats.total()
            scheme.step(world)
            results[mode] = world.stats.total() - before
        assert results["batched"] == results["sequential"]


class TestPlateauParity:
    def test_batched_reaches_sequential_plateau(self):
        """Fig 3-style run: the batched dynamics plateau within two
        coverage points of the sequential dynamics."""
        scale = ExperimentScale(
            field_size=500.0,
            sensor_count=70,
            duration=250.0,
            coverage_resolution=12.5,
        )
        coverages = {}
        for mode in ("sequential", "batched"):
            config = make_config(scale, seed=7)
            world = make_world(config, scale)
            engine = SimulationEngine(
                world, CPVFScheme(mode=mode), trace_every=10**9
            )
            coverages[mode] = engine.run().final_coverage
        gap = abs(coverages["batched"] - coverages["sequential"])
        assert gap <= 0.02, coverages
        # Both reach a meaningful plateau (not a degenerate agreement).
        assert coverages["sequential"] > 0.5


class TestModeSelection:
    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError, match="unknown CPVF mode"):
            CPVFScheme(mode="warp")

    def test_vectorized_flag_maps_to_modes(self):
        assert CPVFScheme(vectorized=False).mode == "sequential"
        assert CPVFScheme(vectorized=True).mode == "vectorized"
        assert CPVFScheme(mode="batched").mode == "batched"
        assert set(CPVF_MODES) == {"sequential", "vectorized", "batched"}

    def test_mode_selectable_via_runspec(self):
        from repro.api import RunSpec, execute_run
        from repro.experiments.common import make_scenario

        record = execute_run(
            RunSpec(
                scenario=make_scenario(SMOKE_SCALE, seed=3),
                scheme="CPVF",
                scheme_params={"mode": "batched"},
            )
        )
        assert record.scheme == "CPVF"
        assert record.coverage > 0.2
        assert record.connected

    def test_mode_selectable_via_cli_flag(self):
        from repro.experiments.runner import run_experiment_records

        records, _ = run_experiment_records(
            "fig3", SMOKE_SCALE, cpvf_mode="batched"
        )
        assert all(
            dict(r.spec.scheme_params)["mode"] == "batched" for r in records
        )


class TestHeterogeneousRanges:
    def test_directed_forces_for_heterogeneous_rc(self):
        """With per-sensor ranges the neighbour relation is directed: a
        sensor only feels neighbours *it* can see.  The batched force
        evaluation must match the scalar model's directed sums, not
        mirror every pair."""
        config = make_config(SMOKE_SCALE, sensor_count=12, seed=9)
        world = make_world(config, SMOKE_SCALE)
        rng = random.Random(3)
        for s in world.sensors:
            s.communication_range = rng.choice([25.0, 60.0, 90.0])
        scheme = CPVFScheme(mode="batched")
        scheme.initialize(world)
        sensors = world.sensors
        n = len(sensors)
        xs = np.fromiter((s.position.x for s in sensors), float, n)
        ys = np.fromiter((s.position.y for s in sensors), float, n)
        connected = np.fromiter((s.is_connected() for s in sensors), bool, n)
        rows, cols, d2 = world.neighbor_pairs(with_d2=True)
        rcs = np.fromiter(
            (s.communication_range for s in sensors), float, n
        ) + 1e-9
        in_range = d2 <= rcs[rows] * rcs[rows]
        ux, uy, moving = scheme._force_direction_arrays(
            world, xs, ys, connected, rows, cols, in_range, symmetric=False
        )
        table = world.neighbor_table()
        forces = scheme._forces
        for s in sensors:
            if not connected[s.sensor_id]:
                continue
            expected = forces.direction(
                s.position,
                [world.sensor(nb).position for nb in table[s.sensor_id]],
                world.field,
            )
            assert ux[s.sensor_id] == pytest.approx(expected.x, abs=1e-12)
            assert uy[s.sensor_id] == pytest.approx(expected.y, abs=1e-12)

    def test_batched_step_runs_with_heterogeneous_rc(self):
        config = make_config(SMOKE_SCALE, sensor_count=16, seed=5)
        world = make_world(config, SMOKE_SCALE)
        rng = random.Random(1)
        for s in world.sensors:
            s.communication_range = rng.choice([40.0, 60.0, 80.0])
        scheme = CPVFScheme(mode="batched")
        scheme.initialize(world)
        for _ in range(10):
            scheme.step(world)
        world.tree.validate()


class TestSchemeReuse:
    def test_reusing_scheme_across_worlds_resets_tree_caches(self):
        """A fresh world restarts its tree version counter, so the
        schedule/link caches of a reused scheme instance must be dropped
        by initialize() — stale entries from the previous world would
        collide with the new counter values."""
        scheme = CPVFScheme(mode="batched")
        coverages = []
        for seed in (3, 19):
            config = make_config(SMOKE_SCALE, seed=seed)
            world = make_world(config, SMOKE_SCALE)
            scheme.initialize(world)
            for _ in range(10):
                scheme.step(world)
            world.tree.validate()
            # Every link the schedule records must exist in this tree.
            schedule = scheme._get_schedule(world)
            for sid in world.tree.members():
                nodes = schedule.link_nodes[
                    schedule.link_offsets[sid]:schedule.link_offsets[sid + 1]
                ]
                expected = {world.tree.parent[sid]} | world.tree.children_of(sid)
                assert set(nodes.tolist()) == expected
            coverages.append(world.coverage())
        assert len(coverages) == 2


class TestLinkIdCache:
    def test_cache_tracks_reparents(self):
        config = make_config(SMOKE_SCALE, seed=5)
        world = make_world(config, SMOKE_SCALE)
        scheme = CPVFScheme(mode="vectorized")
        scheme.initialize(world)
        members = world.tree.members()
        sid = members[0]
        # Prime the cache.
        before = scheme._tree_link_positions(world, world.sensor(sid))
        assert len(before) >= 1
        new_parent = next(
            (
                m
                for m in members
                if m != sid
                and m != world.tree.parent_of(sid)
                and m not in world.tree.subtree_of(sid)
            ),
            None,
        )
        if new_parent is None:
            pytest.skip("degenerate smoke tree")
        world.reparent_in_tree(sid, new_parent)
        after = scheme._tree_link_positions(world, world.sensor(sid))
        parent_pos = world.sensor(new_parent).position
        assert (parent_pos.x, parent_pos.y) in after
