"""Integration-style tests for the CPVF scheme."""

import pytest

from repro.core import CPVFScheme
from repro.experiments.common import SMOKE_SCALE, make_config, make_world
from repro.network import BASE_STATION_ID
from repro.sensors import SensorState
from repro.sim import SimulationEngine


def run_cpvf(rc=60.0, rs=40.0, with_obstacles=False, seed=1, **scheme_kwargs):
    config = make_config(
        SMOKE_SCALE, communication_range=rc, sensing_range=rs, seed=seed
    )
    world = make_world(config, SMOKE_SCALE, with_obstacles=with_obstacles)
    scheme = CPVFScheme(**scheme_kwargs)
    engine = SimulationEngine(world, scheme, trace_every=20)
    return engine.run(), world


class TestCPVFEndToEnd:
    def test_network_becomes_and_stays_connected(self):
        result, world = run_cpvf()
        assert result.connected
        assert all(s.is_connected() for s in world.sensors)

    def test_coverage_improves_over_initial_layout(self):
        config = make_config(SMOKE_SCALE, seed=2)
        world = make_world(config, SMOKE_SCALE)
        initial_coverage = world.coverage()
        scheme = CPVFScheme()
        result = SimulationEngine(world, scheme).run()
        assert result.final_coverage >= initial_coverage

    def test_tree_structure_is_consistent(self):
        result, world = run_cpvf(seed=3)
        world.tree.validate()
        for sensor in world.sensors:
            if sensor.is_connected():
                assert sensor.sensor_id in world.tree

    def test_tree_links_respect_communication_range(self):
        result, world = run_cpvf(seed=4)
        rc = world.config.communication_range
        for sensor in world.sensors:
            parent = world.tree.parent_of(sensor.sensor_id)
            if parent is None or parent == BASE_STATION_ID:
                continue
            assert sensor.position.distance_to(world.sensor(parent).position) <= rc + 1e-6

    def test_sensors_stay_in_free_space(self):
        result, world = run_cpvf(with_obstacles=True, seed=5)
        for sensor in world.sensors:
            assert world.field.is_free(sensor.position)

    def test_messages_are_recorded(self):
        result, _ = run_cpvf(seed=6)
        assert result.total_messages > 0

    def test_small_rc_reduces_coverage(self):
        large_rc, _ = run_cpvf(rc=60.0, rs=40.0, seed=7)
        small_rc, _ = run_cpvf(rc=20.0, rs=40.0, seed=7)
        assert small_rc.final_coverage < large_rc.final_coverage

    def test_oscillation_avoidance_reduces_moving_distance(self):
        plain, _ = run_cpvf(seed=8)
        damped, _ = run_cpvf(seed=8, oscillation_delta=2.0)
        assert damped.average_moving_distance <= plain.average_moving_distance + 1e-6

    def test_never_reports_convergence(self):
        result, _ = run_cpvf(seed=9)
        assert result.converged_at is None

    def test_disconnected_sensors_move_toward_base_station(self):
        config = make_config(SMOKE_SCALE, communication_range=25.0, sensing_range=40.0, seed=10)
        world = make_world(config, SMOKE_SCALE)
        scheme = CPVFScheme()
        scheme.initialize(world)
        moving = [s for s in world.sensors if s.state is SensorState.MOVING_TO_CONNECT]
        if not moving:
            pytest.skip("all sensors started connected in this draw")
        before = {s.sensor_id: s.position.distance_to(world.base_station) for s in moving}
        for period in range(30):
            world.period_index = period
            scheme.step(world)
        progressed = 0
        for s in moving:
            if s.is_connected() or s.position.distance_to(world.base_station) < before[s.sensor_id] - 1e-6:
                progressed += 1
        assert progressed >= len(moving) // 2
