"""Tests for FLG / BLG / IFLG expansion-point discovery."""

import pytest

from repro.core import ExpansionKind, ExpansionPlanner, FloorGeometry, FloorRegistry
from repro.field import Field, Obstacle
from repro.geometry import Vec2


def make_planner(field=None, rc=60.0, rs=40.0):
    field = field or Field(1000.0, 1000.0)
    floors = FloorGeometry.for_field(field, rs)
    registry = FloorRegistry(floors)
    planner = ExpansionPlanner(
        field=field,
        floors=floors,
        registry=registry,
        sensing_range=rs,
        expansion_radius=min(rc, rs),
    )
    return planner, registry


class TestFLG:
    def test_lone_sensor_on_floor_line_expands_both_ways(self):
        planner, registry = make_planner()
        registry.register(0, Vec2(500, 40))
        points = planner.expansion_points(0, Vec2(500, 40))
        flg = [p for p in points if p.kind is ExpansionKind.FLG]
        assert len(flg) == 2
        xs = sorted(p.position.x for p in flg)
        assert xs[0] == pytest.approx(460.0, abs=1.0)
        assert xs[1] == pytest.approx(540.0, abs=1.0)
        assert all(abs(p.position.y - 40.0) < 1e-6 for p in flg)

    def test_covered_frontier_is_not_expanded(self):
        planner, registry = make_planner()
        registry.register(0, Vec2(500, 40))
        registry.register(1, Vec2(540, 40))  # already holds the +x frontier
        points = planner.expansion_points(0, Vec2(500, 40))
        flg = [p for p in points if p.kind is ExpansionKind.FLG]
        assert all(p.position.x < 500 for p in flg)

    def test_off_line_sensor_expands_toward_floor_line(self):
        planner, registry = make_planner()
        registry.register(0, Vec2(500, 60))
        points = planner.expansion_points(0, Vec2(500, 60))
        flg = [p for p in points if p.kind is ExpansionKind.FLG]
        assert flg, "a sensor within rs of its floor line must find FLG points"
        assert all(abs(p.position.y - 40.0) < 5.0 for p in flg)

    def test_expansion_points_sorted_by_priority(self):
        planner, registry = make_planner()
        registry.register(0, Vec2(30, 40))  # near the left boundary: FLG + BLG
        points = planner.expansion_points(0, Vec2(30, 40))
        kinds = [int(p.kind) for p in points]
        assert kinds == sorted(kinds)


class TestBLG:
    def test_sensor_near_left_boundary_finds_blg_points(self):
        planner, registry = make_planner()
        registry.register(0, Vec2(20, 300))
        points = planner.expansion_points(0, Vec2(20, 300))
        blg = [p for p in points if p.kind is ExpansionKind.BLG]
        assert blg, "a sensor seeing the field boundary must find BLG points"

    def test_sensor_in_the_middle_finds_no_blg_points(self):
        planner, registry = make_planner()
        registry.register(0, Vec2(500, 500))
        points = planner.expansion_points(0, Vec2(500, 500))
        assert all(p.kind is not ExpansionKind.BLG for p in points)

    def test_obstacle_boundary_triggers_blg(self):
        field = Field(1000.0, 1000.0, [Obstacle.rectangle(520, 300, 700, 500)])
        planner, registry = make_planner(field=field)
        registry.register(0, Vec2(490, 400))
        points = planner.expansion_points(0, Vec2(490, 400))
        blg = [p for p in points if p.kind is ExpansionKind.BLG]
        assert blg

    def test_expansion_points_avoid_obstacles(self):
        field = Field(1000.0, 1000.0, [Obstacle.rectangle(520, 0, 700, 200)])
        planner, registry = make_planner(field=field)
        registry.register(0, Vec2(500, 40))
        points = planner.expansion_points(0, Vec2(500, 40))
        for p in points:
            assert field.is_free(p.position)


class TestIFLG:
    def test_gap_between_floor_neighbors_is_filled(self):
        planner, registry = make_planner(rc=60.0, rs=40.0)
        registry.register(0, Vec2(500, 40))
        registry.register(1, Vec2(540, 40))
        # Pretend the rest of the floor line is already covered so that FLG
        # does not fire; only the inter-floor corner between 0 and 1 remains.
        for i, x in enumerate([380, 420, 460, 580, 620, 660]):
            registry.register(100 + i, Vec2(float(x), 40.0))
        points = planner.expansion_points(0, Vec2(500, 40))
        iflg = [p for p in points if p.kind is ExpansionKind.IFLG]
        assert iflg, "an uncovered inter-floor hole should produce an IFLG point"
        for p in iflg:
            assert p.position.y > 40.0 or p.position.y < 40.0

    def test_no_iflg_without_floor_neighbors(self):
        planner, registry = make_planner()
        registry.register(0, Vec2(500, 40))
        points = planner.expansion_points(0, Vec2(500, 40))
        assert all(p.kind is not ExpansionKind.IFLG for p in points)

    def test_no_iflg_when_hole_is_covered(self):
        planner, registry = make_planner(rc=60.0, rs=40.0)
        registry.register(0, Vec2(500, 40))
        registry.register(1, Vec2(540, 40))
        # A sensor sitting right on the inter-floor line above covers the hole.
        registry.register(2, Vec2(520, 80))
        points = planner.expansion_points(0, Vec2(500, 40))
        iflg_above = [
            p for p in points if p.kind is ExpansionKind.IFLG and p.position.y > 40
        ]
        assert not iflg_above


class TestPriorityKey:
    def test_priority_order_values(self):
        assert int(ExpansionKind.FLG) < int(ExpansionKind.BLG) < int(ExpansionKind.IFLG)
