"""Tests for the connectivity-preserving step-size selection (CPVF)."""

import pytest
from hypothesis import given, strategies as st

from repro.core import NeighborMotion, STEP_FRACTIONS, max_valid_step, step_is_valid
from repro.geometry import Vec2


class TestStepValidity:
    def test_no_neighbors_means_any_step_is_valid(self):
        assert step_is_valid(Vec2(0, 0), Vec2(100, 0), [], 60.0)

    def test_step_within_range_is_valid(self):
        neighbor = NeighborMotion.stationary(Vec2(0, 30))
        assert step_is_valid(Vec2(0, 0), Vec2(20, 0), [neighbor], 60.0)

    def test_step_breaking_link_is_invalid(self):
        neighbor = NeighborMotion.stationary(Vec2(0, 55))
        assert not step_is_valid(Vec2(0, 0), Vec2(30, 0), [neighbor], 60.0)

    def test_moving_neighbor_end_position_matters(self):
        neighbor = NeighborMotion(current=Vec2(0, 30), planned_end=Vec2(0, 59))
        # End-to-end distance sqrt(20^2 + 59^2) < 60 is fine, but a larger
        # move would break it.
        assert step_is_valid(Vec2(0, 0), Vec2(8, 0), [neighbor], 60.0)
        assert not step_is_valid(Vec2(0, 0), Vec2(30, 0), [neighbor], 60.0)

    def test_initially_out_of_range_neighbor_invalidates(self):
        neighbor = NeighborMotion.stationary(Vec2(0, 100))
        assert not step_is_valid(Vec2(0, 0), Vec2(0, 1), [neighbor], 60.0)


class TestMaxValidStep:
    def test_unconstrained_step_is_full(self):
        step = max_valid_step(Vec2(0, 0), Vec2(1, 0), 2.0, [], 60.0)
        assert step == pytest.approx(2.0)

    def test_zero_direction_gives_zero_step(self):
        assert max_valid_step(Vec2(0, 0), Vec2(0, 0), 2.0, [], 60.0) == 0.0

    def test_constrained_step_is_reduced(self):
        # Neighbour exactly at the communication range in the direction of
        # motion's opposite: moving away must be limited.
        neighbor = NeighborMotion.stationary(Vec2(-59.5, 0))
        step = max_valid_step(Vec2(0, 0), Vec2(1, 0), 2.0, [neighbor], 60.0)
        assert 0.0 < step < 2.0

    def test_fully_blocked_step_is_zero(self):
        neighbor = NeighborMotion.stationary(Vec2(-60.0, 0))
        step = max_valid_step(Vec2(0, 0), Vec2(1, 0), 2.0, [neighbor], 60.0)
        assert step == 0.0

    def test_step_fractions_ladder(self):
        assert STEP_FRACTIONS[0] == 1.0
        assert STEP_FRACTIONS[-1] == 0.0
        assert len(STEP_FRACTIONS) == 11

    @given(
        st.floats(min_value=-50, max_value=50),
        st.floats(min_value=-50, max_value=50),
        st.floats(min_value=0.5, max_value=5.0),
    )
    def test_returned_step_is_always_valid(self, nx, ny, max_step):
        neighbor = NeighborMotion.stationary(Vec2(nx, ny))
        direction = Vec2(1, 0.5)
        step = max_valid_step(Vec2(0, 0), direction, max_step, [neighbor], 60.0)
        if step > 0:
            end = Vec2(0, 0) + direction.normalized() * step
            assert step_is_valid(Vec2(0, 0), end, [neighbor], 60.0)

    @given(st.floats(min_value=0.5, max_value=5.0))
    def test_step_never_exceeds_max(self, max_step):
        step = max_valid_step(Vec2(0, 0), Vec2(1, 1), max_step, [], 60.0)
        assert step <= max_step + 1e-9


class TestConnectivityInvariantOverTime:
    def test_intermediate_positions_stay_within_range(self):
        """Appendix A: if endpoints are within rc, so is every interpolation."""
        rc = 60.0
        start_a, end_a = Vec2(0, 0), Vec2(2, 0)
        start_b, end_b = Vec2(0, 58), Vec2(1, 59)
        assert start_a.distance_to(start_b) <= rc
        assert end_a.distance_to(end_b) <= rc
        for i in range(11):
            t = i / 10
            pa = start_a.lerp(end_a, t)
            pb = start_b.lerp(end_b, t)
            assert pa.distance_to(pb) <= rc + 1e-9
