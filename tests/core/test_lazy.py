"""Tests for the lazy-movement strategy."""

import pytest

from repro.core import LazyMovementController
from repro.field import Field
from repro.geometry import Vec2
from repro.mobility import Bug2Planner, MotionModel
from repro.network import MessageStats, MessageType, RoutingCostModel
from repro.sensors import Sensor


def make_sensor(sensor_id: int, x: float, y: float) -> Sensor:
    return Sensor(
        sensor_id=sensor_id,
        motion=MotionModel(position=Vec2(x, y), max_speed=2.0, period=1.0),
        communication_range=60.0,
        sensing_range=40.0,
    )


def make_controller():
    stats = MessageStats()
    return LazyMovementController(RoutingCostModel(stats)), stats


class TestPathParentChoice:
    def test_chooses_nearest_neighbor_ahead(self):
        controller, _ = make_controller()
        sensor = make_sensor(0, 100, 0)
        ahead_near = make_sensor(1, 80, 0)
        ahead_far = make_sensor(2, 50, 0)
        behind = make_sensor(3, 150, 0)
        choice = controller.choose_path_parent(
            sensor, Vec2(0, 0), [ahead_far, behind, ahead_near]
        )
        assert choice == 1

    def test_no_candidate_when_everyone_is_behind(self):
        controller, _ = make_controller()
        sensor = make_sensor(0, 100, 0)
        behind = make_sensor(1, 150, 0)
        assert controller.choose_path_parent(sensor, Vec2(0, 0), [behind]) is None

    def test_rejected_parents_are_skipped(self):
        controller, _ = make_controller()
        sensor = make_sensor(0, 100, 0)
        sensor.rejected_path_parents.add(1)
        ahead = make_sensor(1, 80, 0)
        assert controller.choose_path_parent(sensor, Vec2(0, 0), [ahead]) is None

    def test_mutual_waiting_is_prevented(self):
        controller, _ = make_controller()
        a = make_sensor(0, 100, 0)
        b = make_sensor(1, 99, 0)
        controller.start_waiting(b, 0)
        # b waits on a, so a may not adopt b.
        assert controller.choose_path_parent(a, Vec2(0, 0), [b]) is None


class TestWaitingAndLoops:
    def test_start_and_stop_waiting(self):
        controller, _ = make_controller()
        sensor = make_sensor(0, 100, 0)
        controller.start_waiting(sensor, 5)
        assert controller.is_waiting(0)
        assert sensor.path_parent_id == 5
        controller.stop_waiting(sensor)
        assert not controller.is_waiting(0)
        assert sensor.path_parent_id is None

    def test_loop_detection_breaks_cycle(self):
        controller, stats = make_controller()
        a, b, c = make_sensor(0, 100, 0), make_sensor(1, 90, 0), make_sensor(2, 80, 0)
        controller.start_waiting(a, 1)
        controller.start_waiting(b, 2)
        controller.start_waiting(c, 0)
        assert controller.check_for_loop(a)
        assert not controller.is_waiting(0)
        assert 1 in a.rejected_path_parents
        assert stats.total_for(MessageType.PATH_PARENT_INQUIRY) > 0

    def test_no_loop_keeps_waiting(self):
        controller, _ = make_controller()
        a, b = make_sensor(0, 100, 0), make_sensor(1, 90, 0)
        controller.start_waiting(a, 1)
        assert not controller.check_for_loop(a)
        assert controller.is_waiting(0)

    def test_should_check_for_loop_threshold(self):
        controller, _ = make_controller()
        sensor = make_sensor(0, 100, 0)
        controller.start_waiting(sensor, 1)
        sensor.idle_periods = 1
        assert not controller.should_check_for_loop(sensor)
        sensor.idle_periods = 5
        assert controller.should_check_for_loop(sensor)


class TestAdvanceTowardConnection:
    def test_walks_when_no_candidate(self):
        controller, _ = make_controller()
        field = Field(400, 400)
        planner = Bug2Planner(field)
        sensor = make_sensor(0, 100, 100)
        controller.advance_toward_connection(
            sensor, Vec2(0, 0), [], lambda: planner.plan(sensor.position, Vec2(0, 0))
        )
        assert sensor.moving_distance == pytest.approx(2.0)

    def test_waits_behind_path_parent(self):
        controller, _ = make_controller()
        field = Field(400, 400)
        planner = Bug2Planner(field)
        sensor = make_sensor(0, 100, 0)
        ahead = make_sensor(1, 80, 0)
        controller.advance_toward_connection(
            sensor,
            Vec2(0, 0),
            [ahead],
            lambda: planner.plan(sensor.position, Vec2(0, 0)),
        )
        assert sensor.moving_distance == 0.0
        assert controller.is_waiting(0)
        assert sensor.idle_periods == 1

    def test_resumes_when_path_parent_disappears(self):
        controller, _ = make_controller()
        field = Field(400, 400)
        planner = Bug2Planner(field)
        sensor = make_sensor(0, 100, 0)
        ahead = make_sensor(1, 80, 0)
        plan = lambda: planner.plan(sensor.position, Vec2(0, 0))
        controller.advance_toward_connection(sensor, Vec2(0, 0), [ahead], plan)
        assert controller.is_waiting(0)
        # Next period the neighbour has moved away (no longer in the list).
        controller.advance_toward_connection(sensor, Vec2(0, 0), [], plan)
        assert not controller.is_waiting(0)
        assert sensor.moving_distance == pytest.approx(2.0)
