"""Tests for the invitation protocol."""

import random

import pytest

from repro.core import InvitationProtocol
from repro.core.expansion import ExpansionKind, ExpansionPoint
from repro.geometry import Vec2
from repro.mobility import MotionModel
from repro.network import BASE_STATION_ID, ConnectivityTree, MessageStats, MessageType, RoutingCostModel
from repro.sensors import Sensor, SensorState


def make_movable(sensor_id: int, x: float, y: float) -> Sensor:
    sensor = Sensor(
        sensor_id=sensor_id,
        motion=MotionModel(position=Vec2(x, y), max_speed=2.0, period=1.0),
        communication_range=60.0,
        sensing_range=40.0,
        state=SensorState.MOVABLE,
    )
    return sensor


def make_protocol(ttl=10, seed=1):
    stats = MessageStats()
    routing = RoutingCostModel(stats)
    protocol = InvitationProtocol(routing=routing, ttl=ttl, rng=random.Random(seed))
    return protocol, stats


def make_tree(ids):
    tree = ConnectivityTree()
    for i in ids:
        tree.attach(i, BASE_STATION_ID)
    return tree


def ep(owner, x, y, kind=ExpansionKind.FLG):
    return ExpansionPoint(Vec2(x, y), kind, owner)


class TestInvitationRound:
    def test_no_expansion_points_no_cost(self):
        protocol, stats = make_protocol()
        tree = make_tree([0])
        assignments = protocol.run_round([], [make_movable(1, 0, 0)], 2, tree)
        assert assignments == []
        assert stats.total() == 0

    def test_walk_cost_charged_even_without_movable_sensors(self):
        protocol, stats = make_protocol(ttl=7)
        tree = make_tree([0])
        assignments = protocol.run_round([ep(0, 100, 40)], [], 5, tree)
        assert assignments == []
        assert stats.total_for(MessageType.INVITATION) == 7

    def test_full_reach_assigns_each_ep_once(self):
        # TTL >= connected count means every movable sensor hears every EP.
        protocol, stats = make_protocol(ttl=100)
        tree = make_tree([0, 1, 2])
        eps = [ep(0, 100, 40), ep(0, 140, 40)]
        movable = [make_movable(1, 90, 40), make_movable(2, 130, 40)]
        assignments = protocol.run_round(eps, movable, 3, tree)
        assert len(assignments) == 2
        assigned_sensors = {a.movable_id for a in assignments}
        assert assigned_sensors == {1, 2}
        targets = {(round(a.expansion_point.position.x)) for a in assignments}
        assert targets == {100, 140}

    def test_each_movable_assigned_at_most_once(self):
        protocol, _ = make_protocol(ttl=100)
        tree = make_tree([0, 1])
        eps = [ep(0, 100, 40), ep(0, 140, 40), ep(0, 180, 40)]
        movable = [make_movable(1, 90, 40)]
        assignments = protocol.run_round(eps, movable, 2, tree)
        assert len(assignments) == 1

    def test_higher_priority_kind_wins(self):
        protocol, _ = make_protocol(ttl=100)
        tree = make_tree([0, 1])
        flg = ep(0, 500, 40, ExpansionKind.FLG)
        iflg = ep(0, 95, 40, ExpansionKind.IFLG)  # nearer, but lower priority
        movable = [make_movable(1, 90, 40)]
        assignments = protocol.run_round([iflg, flg], movable, 2, tree)
        assert len(assignments) == 1
        assert assignments[0].expansion_point.kind is ExpansionKind.FLG

    def test_distance_breaks_priority_ties(self):
        protocol, _ = make_protocol(ttl=100)
        tree = make_tree([0, 1])
        near = ep(0, 100, 40)
        far = ep(0, 900, 40)
        movable = [make_movable(1, 90, 40)]
        assignments = protocol.run_round([far, near], movable, 2, tree)
        assert assignments[0].expansion_point.position.x == pytest.approx(100)

    def test_message_accounting_includes_accept_and_ack(self):
        protocol, stats = make_protocol(ttl=100)
        tree = make_tree([0, 1])
        assignments = protocol.run_round(
            [ep(0, 100, 40)], [make_movable(1, 90, 40)], 2, tree
        )
        assert len(assignments) == 1
        assert stats.total_for(MessageType.ACCEPT_INVITATION) > 0
        assert stats.total_for(MessageType.ACKNOWLEDGE) > 0
        assert stats.total_for(MessageType.LOCATION_UPDATE) > 0

    def test_zero_reach_probability_yields_no_assignments(self):
        protocol, stats = make_protocol(ttl=1, seed=3)
        tree = make_tree([0, 1])
        # With 10^6 connected sensors the reach probability is ~0.
        assignments = protocol.run_round(
            [ep(0, 100, 40)], [make_movable(1, 90, 40)], 1_000_000, tree
        )
        assert assignments == []
        assert stats.total_for(MessageType.INVITATION) == 1
