"""Tests for the floor geometry used by FLOOR."""

import pytest
from hypothesis import given, strategies as st

from repro.core import FloorGeometry
from repro.field import obstacle_free_field
from repro.geometry import Vec2


def make_floors(rs=40.0, height=1000.0, width=1000.0) -> FloorGeometry:
    return FloorGeometry(sensing_range=rs, field_height=height, field_width=width)


class TestBasics:
    def test_floor_height_is_twice_sensing_range(self):
        assert make_floors(rs=40).floor_height == 80.0

    def test_floor_count(self):
        assert make_floors(rs=40, height=1000).floor_count == 13  # ceil(1000/80)
        assert make_floors(rs=50, height=1000).floor_count == 10

    def test_floor_line_positions(self):
        floors = make_floors(rs=40)
        assert floors.floor_line_y(0) == 40.0
        assert floors.floor_line_y(1) == 120.0
        assert floors.floor_line_y(12) == 1000.0  # clamped to the field

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            FloorGeometry(sensing_range=0, field_height=100, field_width=100)
        with pytest.raises(ValueError):
            FloorGeometry(sensing_range=10, field_height=-1, field_width=100)
        with pytest.raises(ValueError):
            make_floors().floor_line_y(-1)

    def test_for_field_constructor(self):
        field = obstacle_free_field(500.0)
        floors = FloorGeometry.for_field(field, 40.0)
        assert floors.field_height == 500.0
        assert floors.field_width == 500.0


class TestFloorLookup:
    def test_floor_index(self):
        floors = make_floors(rs=40)
        assert floors.floor_index(0.0) == 0
        assert floors.floor_index(79.9) == 0
        assert floors.floor_index(80.1) == 1
        assert floors.floor_index(1000.0) == 12

    def test_nearest_floor_line(self):
        floors = make_floors(rs=40)
        assert floors.nearest_floor_line(10.0) == 40.0
        assert floors.nearest_floor_line(100.0) == 120.0
        assert floors.nearest_floor_line(75.0) == 40.0
        assert floors.nearest_floor_line(85.0) == 120.0

    def test_floor_line_segment_spans_width(self):
        floors = make_floors(rs=40, width=500)
        seg = floors.floor_line_segment(2)
        assert seg.a == Vec2(0, 200)
        assert seg.b == Vec2(500, 200)

    def test_floor_lines_list(self):
        floors = make_floors(rs=40, height=320)
        assert floors.floor_lines() == [40.0, 120.0, 200.0, 280.0]

    @given(st.floats(min_value=0, max_value=1000))
    def test_every_point_is_within_rs_of_its_nearest_floor_line(self, y):
        floors = make_floors(rs=40)
        assert abs(y - floors.nearest_floor_line(y)) <= 40.0 + 1e-9

    @given(st.floats(min_value=0, max_value=1000))
    def test_distance_to_floor_line_consistency(self, y):
        floors = make_floors(rs=40)
        assert floors.distance_to_floor_line(Vec2(5, y)) == pytest.approx(
            abs(y - floors.nearest_floor_line(y))
        )


class TestInterFloorLines:
    def test_inter_floor_lines(self):
        floors = make_floors(rs=40, height=320)
        assert floors.inter_floor_lines() == [80.0, 160.0, 240.0]

    def test_inter_floor_line_above_and_below(self):
        floors = make_floors(rs=40, height=320)
        assert floors.inter_floor_line_below(0) is None
        assert floors.inter_floor_line_above(0) == 80.0
        assert floors.inter_floor_line_below(2) == 160.0
        assert floors.inter_floor_line_above(3) is None


class TestCoverageQuerySupport:
    def test_floors_possibly_covering(self):
        floors = make_floors(rs=40)
        covering = floors.floors_possibly_covering(Vec2(100, 80), 40.0)
        # Point at y=80 can be covered from floor lines 40 and 120 only.
        assert covering == [0, 1]

    def test_point_on_floor_line_covered_by_that_floor(self):
        floors = make_floors(rs=40)
        assert 1 in floors.floors_possibly_covering(Vec2(0, 120), 40.0)
