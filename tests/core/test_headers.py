"""Tests for the floor registry and coverage-status queries."""

import pytest

from repro.core import FloorGeometry, FloorRegistry
from repro.geometry import Vec2


def make_registry(rs=40.0, size=1000.0) -> FloorRegistry:
    floors = FloorGeometry(sensing_range=rs, field_height=size, field_width=size)
    return FloorRegistry(floors)


class TestRegistration:
    def test_register_files_by_floor(self):
        registry = make_registry()
        floor = registry.register(1, Vec2(100, 40))
        assert floor == 0
        assert registry.floor_of(1) == 0
        assert len(registry.records_on_floor(0)) == 1

    def test_unregister(self):
        registry = make_registry()
        registry.register(1, Vec2(100, 40))
        registry.unregister(1)
        assert registry.floor_of(1) is None
        assert registry.count() == 0

    def test_promote_virtual(self):
        registry = make_registry()
        registry.register(9, Vec2(100, 40), virtual=True)
        assert registry.count(include_virtual=False) == 0
        registry.promote_virtual(9, Vec2(100, 42))
        assert registry.count(include_virtual=False) == 1

    def test_reregistration_overwrites(self):
        registry = make_registry()
        registry.register(1, Vec2(100, 40))
        registry.register(1, Vec2(100, 200))
        assert registry.floor_of(1) == 2
        assert registry.count() == 1 or registry.floor_of(1) == 2


class TestHeaders:
    def test_header_is_smallest_x(self):
        registry = make_registry()
        registry.register(1, Vec2(300, 40))
        registry.register(2, Vec2(100, 50))
        registry.register(3, Vec2(200, 60))
        header = registry.header_of_floor(0)
        assert header.node_id == 2

    def test_header_tie_broken_by_id(self):
        registry = make_registry()
        registry.register(5, Vec2(100, 40))
        registry.register(2, Vec2(100, 50))
        assert registry.header_of_floor(0).node_id == 2

    def test_header_of_empty_floor(self):
        assert make_registry().header_of_floor(3) is None


class TestCoverageQueries:
    def test_covered_point(self):
        registry = make_registry()
        registry.register(1, Vec2(100, 40))
        covered, floors_asked = registry.is_point_covered(Vec2(110, 50), 40.0)
        assert covered
        assert 0 in floors_asked

    def test_uncovered_point(self):
        registry = make_registry()
        registry.register(1, Vec2(100, 40))
        covered, _ = registry.is_point_covered(Vec2(500, 500), 40.0)
        assert not covered

    def test_exclusion_list(self):
        registry = make_registry()
        registry.register(1, Vec2(100, 40))
        covered, _ = registry.is_point_covered(Vec2(110, 50), 40.0, exclude=[1])
        assert not covered

    def test_virtual_nodes_count_for_coverage(self):
        registry = make_registry()
        registry.register(7, Vec2(100, 40), virtual=True)
        covered, _ = registry.is_point_covered(Vec2(100, 40), 40.0)
        assert covered


class TestNeighborsAndSummary:
    def test_neighbors_on_floor(self):
        registry = make_registry()
        registry.register(1, Vec2(100, 40))
        registry.register(2, Vec2(140, 40))
        registry.register(3, Vec2(400, 40))
        neighbors = registry.neighbors_on_floor(1, radius=80.0)
        assert [r.node_id for r in neighbors] == [2]

    def test_neighbors_of_unknown_node(self):
        assert make_registry().neighbors_on_floor(99, radius=80.0) == []

    def test_compact_summary_merges_contiguous_runs(self):
        registry = make_registry(rs=40.0)
        for i, x in enumerate([0, 40, 80, 120]):
            registry.register(i, Vec2(x, 40))
        registry.register(10, Vec2(600, 40))
        summary = registry.compact_summary(0)
        assert summary == [(0.0, 120.0), (600.0, 600.0)]

    def test_compact_summary_empty_floor(self):
        assert make_registry().compact_summary(4) == []


class TestSpatialIndexParity:
    """The indexed registry queries must agree with the exhaustive scan."""

    def _random_registries(self, rng, rs=40.0, size=1000.0, n=80):
        indexed = make_registry(rs=rs, size=size)
        brute = make_registry(rs=rs, size=size)
        brute.use_spatial_index = False
        for node_id in range(n):
            pos = Vec2(rng.uniform(0, size), rng.uniform(0, size))
            virtual = rng.random() < 0.2
            indexed.register(node_id, pos, virtual=virtual)
            brute.register(node_id, pos, virtual=virtual)
        # Churn: unregister some, re-register others elsewhere, promote one.
        for node_id in rng.sample(range(n), n // 5):
            indexed.unregister(node_id)
            brute.unregister(node_id)
        for node_id in rng.sample(range(n), n // 5):
            pos = Vec2(rng.uniform(0, size), rng.uniform(0, size))
            indexed.register(node_id, pos)
            brute.register(node_id, pos)
        promoted = Vec2(rng.uniform(0, size), rng.uniform(0, size))
        indexed.promote_virtual(0, promoted)
        brute.promote_virtual(0, promoted)
        return indexed, brute

    @pytest.mark.parametrize("seed", [11, 23, 47])
    def test_is_point_covered_parity(self, seed):
        import random

        rng = random.Random(seed)
        indexed, brute = self._random_registries(rng)
        for _ in range(200):
            point = Vec2(rng.uniform(-50, 1050), rng.uniform(-50, 1050))
            sensing_range = rng.uniform(5.0, 120.0)
            exclude = rng.sample(range(80), rng.randint(0, 4))
            assert indexed.is_point_covered(
                point, sensing_range, exclude=exclude
            ) == brute.is_point_covered(point, sensing_range, exclude=exclude)

    @pytest.mark.parametrize("seed", [5, 17])
    def test_neighbors_on_floor_parity(self, seed):
        import random

        rng = random.Random(seed)
        indexed, brute = self._random_registries(rng)
        for node_id in range(80):
            radius = rng.uniform(10.0, 200.0)
            fast = indexed.neighbors_on_floor(node_id, radius)
            slow = brute.neighbors_on_floor(node_id, radius)
            assert [r.node_id for r in fast] == [r.node_id for r in slow]
            assert fast == slow
