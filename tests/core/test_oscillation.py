"""Tests for the oscillation-avoidance rules (Fig 12)."""

import pytest

from repro.core import OscillationAvoidance, OscillationMode
from repro.geometry import Vec2


class TestModeParsing:
    def test_parse_one_step(self):
        assert OscillationMode.from_string("one-step") is OscillationMode.ONE_STEP
        assert OscillationMode.from_string("ONE_STEP") is OscillationMode.ONE_STEP

    def test_parse_two_step(self):
        assert OscillationMode.from_string("two-step") is OscillationMode.TWO_STEP

    def test_parse_unknown(self):
        with pytest.raises(ValueError):
            OscillationMode.from_string("three-step")


class TestOneStep:
    def test_disabled_when_delta_none(self):
        avoid = OscillationAvoidance(max_step=2.0, delta=None)
        assert avoid.threshold() == 0.0
        assert not avoid.should_cancel(0.01, Vec2(0, 0), Vec2(0.01, 0), None)

    def test_small_step_cancelled(self):
        avoid = OscillationAvoidance(max_step=2.0, delta=4.0)  # threshold 0.5
        assert avoid.should_cancel(0.3, Vec2(0, 0), Vec2(0.3, 0), None)

    def test_large_step_allowed(self):
        avoid = OscillationAvoidance(max_step=2.0, delta=4.0)
        assert not avoid.should_cancel(1.0, Vec2(0, 0), Vec2(1.0, 0), None)

    def test_smaller_delta_cancels_more(self):
        aggressive = OscillationAvoidance(max_step=2.0, delta=2.0)   # threshold 1.0
        permissive = OscillationAvoidance(max_step=2.0, delta=10.0)  # threshold 0.2
        assert aggressive.should_cancel(0.5, Vec2(0, 0), Vec2(0.5, 0), None)
        assert not permissive.should_cancel(0.5, Vec2(0, 0), Vec2(0.5, 0), None)


class TestTwoStep:
    def test_requires_history(self):
        avoid = OscillationAvoidance(
            max_step=2.0, delta=2.0, mode=OscillationMode.TWO_STEP
        )
        assert not avoid.should_cancel(2.0, Vec2(0, 0), Vec2(2, 0), None)

    def test_back_and_forth_cancelled(self):
        avoid = OscillationAvoidance(
            max_step=2.0, delta=2.0, mode=OscillationMode.TWO_STEP
        )
        # The sensor is about to return next to where it was two steps ago.
        previous = Vec2(0.1, 0)
        assert avoid.should_cancel(2.0, Vec2(2, 0), Vec2(0.3, 0), previous)

    def test_forward_progress_allowed(self):
        avoid = OscillationAvoidance(
            max_step=2.0, delta=2.0, mode=OscillationMode.TWO_STEP
        )
        previous = Vec2(0, 0)
        assert not avoid.should_cancel(2.0, Vec2(2, 0), Vec2(4, 0), previous)
