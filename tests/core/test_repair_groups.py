"""Conflict-grouped repair: parity with the serialized pass.

The batched CPVF repair pass now executes in conflict-free *groups*
(members whose required links share no endpoint are re-laddered and
committed as one numpy pass per round) instead of one scalar walk per
sensor.  The grouping must be invisible: without parent changes the full
trajectory is bit-identical to the serialized pass, and with parent
changes enabled the paper's LockTree/UnLockTree handshake must be
charged per attempt exactly as before — pinned here by stepping grouped
and serialized twins from identical world snapshots and comparing the
per-period lock counts.
"""

import copy

import pytest

from repro.core import CPVFScheme
from repro.core.lazy import LazyMovementController
from repro.core.oscillation import OscillationAvoidance
from repro.core.virtual_force import VirtualForceModel
from repro.experiments.common import SMOKE_SCALE, make_config, make_world
from repro.mobility import Bug2Planner, Handedness
from repro.network import MessageType
from repro.obs import Telemetry

LOCK_TYPES = (MessageType.LOCK_TREE, MessageType.UNLOCK_TREE)


def _twin(world, config, repair_grouping, allow_parent_change=True):
    """A batched scheme wired to an already-initialized world snapshot."""
    scheme = CPVFScheme(
        mode="batched",
        allow_parent_change=allow_parent_change,
        repair_grouping=repair_grouping,
    )
    scheme._planner = Bug2Planner(world.field, Handedness.RIGHT)
    scheme._forces = VirtualForceModel(
        repulsion_distance=2.0 * config.sensing_range,
        obstacle_distance=config.sensing_range,
    )
    scheme._lazy = LazyMovementController(world.routing)
    scheme._avoidance = OscillationAvoidance(
        max_step=config.max_step, delta=None
    )
    return scheme


def _world_fingerprint(world):
    positions = [(s.position.x, s.position.y) for s in world.sensors]
    counts = {mt.name: c for mt, c in world.routing.stats.counts.items()}
    return positions, counts


class TestGroupedParity:
    @pytest.mark.parametrize("seed", [1, 3, 7])
    def test_bit_identical_without_parent_changes(self, seed):
        """Grouped == serialized, position for position, message for
        message, when re-parenting is disabled (the repair ladder then
        depends only on link positions, which the grouping freezes
        identically)."""
        runs = {}
        for grouping in (True, False):
            config = make_config(SMOKE_SCALE, seed=seed)
            world = make_world(config, SMOKE_SCALE)
            scheme = CPVFScheme(
                mode="batched",
                allow_parent_change=False,
                repair_grouping=grouping,
            )
            scheme.initialize(world)
            for _ in range(8):
                scheme.step(world)
            runs[grouping] = _world_fingerprint(world)
        assert runs[True][0] == runs[False][0]
        assert runs[True][1] == runs[False][1]

    @pytest.mark.parametrize("seed", [3, 5])
    def test_coverage_parity_with_parent_changes(self, seed):
        """Full dynamics (parent changes on): the grouped repair keeps
        the coverage trajectory within the Fig 3(a) convergence gate."""
        coverages = {}
        for grouping in (True, False):
            config = make_config(SMOKE_SCALE, seed=seed)
            world = make_world(config, SMOKE_SCALE)
            scheme = CPVFScheme(mode="batched", repair_grouping=grouping)
            scheme.initialize(world)
            for _ in range(12):
                scheme.step(world)
            coverages[grouping] = world.coverage()
        assert coverages[True] == pytest.approx(coverages[False], abs=0.02)


class TestLockHandshakeSnapshot:
    #: Golden per-period LockTree (== UnLockTree) transmission counts,
    #: grouped vs serialized repair, measured from identical world
    #: snapshots (the driver advances with serialized repair).  The two
    #: traces agree except seed 3 / period 4: there the group reordering
    #: legitimately changes one parent-change attempt's outcome — the
    #: same per-attempt charging rule applied to a slightly different
    #: attempt set, exactly the relaxation ``mode="batched"`` itself
    #: makes for parent-change dynamics (see docs/performance.md).
    GOLDEN = {
        3: {True: [0, 6, 0, 5, 25, 9, 3, 0], False: [0, 6, 0, 5, 21, 9, 3, 0]},
        5: {True: [0, 3, 11, 2, 18, 1, 0, 0], False: [0, 3, 11, 2, 18, 1, 0, 0]},
    }

    @pytest.mark.parametrize("seed", [3, 5])
    def test_per_period_lock_counts_snapshot(self, seed):
        """From identical snapshots, the per-period LockTree/UnLockTree
        charge of grouped and serialized repair matches the committed
        golden traces, and every period's handshake is balanced (each
        lock wave has its unlock wave, grouped or not)."""
        config = make_config(SMOKE_SCALE, seed=seed)
        world = make_world(config, SMOKE_SCALE)
        driver = CPVFScheme(mode="batched", repair_grouping=False)
        driver.initialize(world)
        traces = {True: [], False: []}
        for period in range(8):
            for grouping in (True, False):
                snap = copy.deepcopy(world)
                twin = _twin(snap, config, grouping)
                before = {
                    mt: snap.routing.stats.counts.get(mt, 0)
                    for mt in LOCK_TYPES
                }
                twin.step(snap)
                lock, unlock = (
                    snap.routing.stats.counts.get(mt, 0) - before[mt]
                    for mt in LOCK_TYPES
                )
                # The handshake is always balanced, attempt for attempt.
                assert lock == unlock, f"period {period}"
                traces[grouping].append(lock)
            # A period sees lock traffic under one repair order iff it
            # does under the other (the candidate set is snapshot-
            # determined; only attempt outcomes may differ).
            assert (traces[True][-1] > 0) == (traces[False][-1] > 0)
            driver.step(world)
        assert traces == self.GOLDEN[seed]
        # The scenario must actually exercise the handshake, or the pin
        # above is vacuous.
        assert any(traces[True])


class TestGroupedInvariants:
    def test_connectivity_never_lost(self):
        """The grouped commits preserve the connected component: nobody
        already connected is ever stranded by a batched group move."""
        config = make_config(SMOKE_SCALE, seed=3)
        world = make_world(config, SMOKE_SCALE)
        scheme = CPVFScheme(mode="batched")
        scheme.initialize(world)
        component = world.connected_component_of()
        for _ in range(10):
            scheme.step(world)
            now = world.connected_component_of()
            assert component <= now, "a connected sensor dropped out"
            component = now

    def test_telemetry_spans_and_counters(self):
        """Grouped runs report cpvf.repair_groups / cpvf.repair_rounds;
        serialized runs keep the cpvf.repair span.  The pair span is
        split by maintenance kind with the repaired/rebuilt counters."""
        summaries = {}
        for grouping in (True, False):
            config = make_config(SMOKE_SCALE, seed=3)
            world = make_world(config, SMOKE_SCALE)
            tel = Telemetry()
            world.telemetry = tel
            scheme = CPVFScheme(mode="batched", repair_grouping=grouping)
            scheme.initialize(world)
            for _ in range(8):
                scheme.step(world)
            summaries[grouping] = tel.summary()
        grouped, serialized = summaries[True], summaries[False]
        assert "cpvf.repair_groups" in grouped.phases
        assert "cpvf.repair" not in grouped.phases
        assert grouped.counters.get("cpvf.repair_rounds", 0) >= 1
        assert "cpvf.repair" in serialized.phases
        assert "cpvf.repair_groups" not in serialized.phases
        for summary in (grouped, serialized):
            # Most periods are answered by the maintained pair store.
            assert summary.counters.get("cpvf.pairs_repaired", 0) >= 1
            assert "cpvf.pairs_incremental" in summary.phases
            repaired = summary.counters.get("cpvf.pairs_repaired", 0)
            rebuilt = summary.counters.get("cpvf.pairs_rebuilt", 0)
            pair_calls = sum(
                summary.phases[name].calls
                for name in ("cpvf.pairs", "cpvf.pairs_incremental")
                if name in summary.phases
            )
            # Exactly one maintenance event is counted per kernel pass.
            assert repaired + rebuilt == pair_calls
