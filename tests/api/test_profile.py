"""Run-attached profiles: fingerprint invariance, determinism, round-trip."""

import json

from repro.api import (
    RunRecord,
    RunSpec,
    ScenarioSpec,
    SweepRunner,
    TelemetrySummary,
    execute_run,
)


def _scenario(seed=5, duration=20.0):
    return ScenarioSpec(
        field_size=300.0,
        sensor_count=24,
        communication_range=60.0,
        sensing_range=40.0,
        duration=duration,
        coverage_resolution=15.0,
        seed=seed,
    )


def _strip_telemetry(record):
    payload = record.to_dict()
    payload.pop("telemetry", None)
    payload["spec"].pop("profile", None)
    return payload


class TestFingerprintInvariance:
    def test_profile_does_not_change_fingerprint(self):
        spec = RunSpec(scenario=_scenario(), scheme="CPVF")
        assert spec.fingerprint() == spec.replace(profile=True).fingerprint()

    def test_profile_survives_spec_roundtrip(self):
        spec = RunSpec(scenario=_scenario(), scheme="CPVF", profile=True)
        assert RunSpec.from_dict(spec.to_dict()).profile is True


class TestProfiledExecution:
    def test_profiled_run_attaches_summary(self):
        record = execute_run(
            RunSpec(scenario=_scenario(), scheme="CPVF", profile=True)
        )
        summary = record.telemetry
        assert summary is not None
        assert "engine.scheme_step" in summary.phases
        assert summary.counters["engine.periods"] == record.periods_executed
        assert summary.counters["messages.total"] == record.total_messages

    def test_unprofiled_run_has_no_telemetry(self):
        record = execute_run(RunSpec(scenario=_scenario(), scheme="CPVF"))
        assert record.telemetry is None

    def test_profiling_leaves_results_identical(self):
        spec = RunSpec(scenario=_scenario(), scheme="CPVF", trace_every=5)
        plain = execute_run(spec)
        profiled = execute_run(spec.replace(profile=True))
        assert _strip_telemetry(plain) == _strip_telemetry(profiled)

    def test_vd_baseline_gets_execute_phase(self):
        record = execute_run(
            RunSpec(scenario=_scenario(duration=10.0), scheme="VOR", profile=True)
        )
        assert record.telemetry is not None
        assert "run.execute" in record.telemetry.phases


class TestCounterDeterminism:
    def test_counter_totals_identical_across_job_counts(self):
        scenario = _scenario(duration=15.0)
        specs = [
            RunSpec(
                scenario=scenario.replace(seed=seed),
                scheme="CPVF",
                profile=True,
            )
            for seed in (1, 2, 3, 4)
        ]
        serial = SweepRunner(jobs=1).run(specs)
        sharded = SweepRunner(jobs=2).run(specs)

        def merged_counters(records):
            merged = TelemetrySummary()
            for record in records:
                merged = merged.merge(record.telemetry)
            return merged.counters

        assert merged_counters(serial) == merged_counters(sharded)
        # And the records agree wholesale on everything non-wall-clock.
        assert [_strip_counter_free(r) for r in serial] == [
            _strip_counter_free(r) for r in sharded
        ]


def _strip_counter_free(record):
    payload = record.to_dict()
    telemetry = payload.pop("telemetry")
    return payload, telemetry["counters"], telemetry["gauges"]


class TestRecordRoundTrip:
    def test_telemetry_survives_json(self):
        record = execute_run(
            RunSpec(scenario=_scenario(), scheme="CPVF", profile=True)
        )
        restored = RunRecord.from_dict(json.loads(json.dumps(record.to_dict())))
        assert restored == record
        assert restored.telemetry == record.telemetry

    def test_legacy_payload_without_telemetry_key(self):
        record = execute_run(RunSpec(scenario=_scenario(), scheme="CPVF"))
        payload = record.to_dict()
        payload.pop("telemetry")
        payload["spec"].pop("profile")
        restored = RunRecord.from_dict(payload)
        assert restored.telemetry is None
        assert restored.spec.profile is False
