"""SweepRunner: parallel-vs-serial record equality and adapter coverage."""

import pytest

from repro.api import RunSpec, SweepRunner, execute_run
from repro.experiments import SMOKE_SCALE, make_scenario
from repro.experiments.fig9 import sweep_fig9


class TestSweepRunner:
    def test_parallel_equals_serial_on_fig9_smoke_grid(self):
        # The acceptance property of the sharded executor: a --jobs N sweep
        # yields records identical to the serial run, on a real figure grid.
        sweep = sweep_fig9(
            SMOKE_SCALE,
            sensor_counts=[120],
            range_pairs=[(60.0, 40.0)],
            seed=2,
        )
        serial = SweepRunner(jobs=1).run(sweep)
        sharded = SweepRunner(jobs=2).run(sweep)
        assert serial == sharded
        assert [r.scheme for r in serial] == ["CPVF", "FLOOR", "OPT"]

    def test_empty_sweep(self):
        assert SweepRunner(jobs=4).run([]) == []

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=0)

    def test_runner_accepts_plain_spec_lists(self):
        scenario = make_scenario(SMOKE_SCALE, seed=5).replace(duration=10.0)
        specs = [RunSpec(scenario=scenario, scheme=s) for s in ("CPVF", "OPT")]
        records = SweepRunner(jobs=1).run(specs)
        assert [r.spec for r in records] == specs


class TestAdapters:
    def test_period_scheme_trace_and_positions(self):
        scenario = make_scenario(SMOKE_SCALE, seed=6).replace(duration=20.0)
        record = execute_run(
            RunSpec(
                scenario=scenario,
                scheme="CPVF",
                trace_every=5,
                keep_positions=True,
            )
        )
        assert record.trace, "trace_every should populate the trace"
        assert record.trace[-1].coverage == pytest.approx(record.coverage)
        assert len(record.final_positions) == scenario.sensor_count
        # Without trace_every / keep_positions the record stays light.
        bare = execute_run(RunSpec(scenario=scenario, scheme="CPVF"))
        assert bare.trace == () and bare.final_positions is None
        assert bare.coverage == pytest.approx(record.coverage)

    def test_vd_adapter_unknown_param_rejected(self):
        scenario = make_scenario(SMOKE_SCALE, seed=6)
        with pytest.raises(TypeError, match="bogus"):
            execute_run(
                RunSpec(
                    scenario=scenario,
                    scheme="VOR",
                    scheme_params={"rounds": 1, "bogus": 1},
                )
            )

    def test_analytic_adapters_reject_unknown_params(self):
        scenario = make_scenario(SMOKE_SCALE, seed=6)
        for scheme in ("OPT", "OPT-Hungarian"):
            with pytest.raises(TypeError, match="rounds"):
                execute_run(
                    RunSpec(
                        scenario=scenario,
                        scheme=scheme,
                        scheme_params={"rounds": 5},
                    )
                )

    def test_opt_hungarian_charges_matching_distance(self):
        scenario = make_scenario(SMOKE_SCALE, seed=6)
        record = execute_run(RunSpec(scenario=scenario, scheme="OPT-Hungarian"))
        assert record.average_moving_distance > 0.0
        assert record.total_moving_distance == pytest.approx(
            record.average_moving_distance * scenario.sensor_count
        )
