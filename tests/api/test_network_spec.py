"""RunSpec/SweepSpec integration of the serializable NetworkSpec."""

import json

from repro.api import NetworkSpec, RunSpec, ScenarioSpec, SweepSpec


def small_spec(**overrides):
    scenario = ScenarioSpec(
        field_size=300.0,
        sensor_count=12,
        duration=20.0,
        coverage_resolution=15.0,
        seed=2,
    )
    defaults = dict(scenario=scenario, scheme="CPVF")
    defaults.update(overrides)
    return RunSpec(**defaults)


DEGRADED = NetworkSpec(model="unreliable", loss=0.1, staleness=5)


class TestSerialization:
    def test_round_trip_with_network(self):
        spec = small_spec(network=DEGRADED)
        reparsed = RunSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert reparsed == spec
        assert reparsed.network == DEGRADED

    def test_round_trip_without_network(self):
        spec = small_spec()
        payload = spec.to_dict()
        assert payload["network"] is None
        assert RunSpec.from_dict(payload) == spec

    def test_legacy_payload_without_network_key_loads(self):
        payload = small_spec().to_dict()
        del payload["network"]
        assert RunSpec.from_dict(payload) == small_spec()


class TestFingerprint:
    def test_unset_and_structural_specs_share_the_default_fingerprint(self):
        base = small_spec().fingerprint()
        assert small_spec(network=NetworkSpec()).fingerprint() == base
        assert (
            small_spec(network=NetworkSpec(model="unreliable")).fingerprint()
            == base
        )

    def test_default_fingerprint_is_pinned(self):
        """The structural-mode identity: this digest predates the network
        backend, and attaching no (or a structural) spec must never move
        it — a warm run store written before the backend existed keeps
        serving these runs."""
        assert (
            small_spec().fingerprint()
            == "9acc53ff17501fb579d69ee069be0354f72b9b8e"
        )

    def test_degraded_spec_moves_the_fingerprint(self):
        base = small_spec().fingerprint()
        degraded = small_spec(network=DEGRADED).fingerprint()
        assert degraded != base
        assert (
            small_spec(
                network=NetworkSpec(model="unreliable", loss=0.2, staleness=5)
            ).fingerprint()
            != degraded
        )

    def test_retry_limit_is_identity_when_degraded(self):
        a = small_spec(
            network=NetworkSpec(model="unreliable", loss=0.1, retry_limit=1)
        )
        b = small_spec(
            network=NetworkSpec(model="unreliable", loss=0.1, retry_limit=5)
        )
        assert a.fingerprint() != b.fingerprint()

    def test_degraded_fingerprint_round_trips(self):
        spec = small_spec(network=DEGRADED)
        reparsed = RunSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert reparsed.fingerprint() == spec.fingerprint()


class TestSweepGrid:
    def test_grid_threads_network_into_every_run(self):
        scenario = ScenarioSpec(
            field_size=300.0, sensor_count=12, duration=20.0, seed=2
        )
        sweep = SweepSpec.grid(
            "degraded",
            scenario,
            schemes=("CPVF", "FLOOR"),
            axes={"communication_range": [40.0, 60.0]},
            network=DEGRADED,
        )
        assert len(sweep.runs) == 4
        assert all(run.network == DEGRADED for run in sweep.runs)

    def test_grid_default_leaves_network_unset(self):
        scenario = ScenarioSpec(
            field_size=300.0, sensor_count=12, duration=20.0, seed=2
        )
        sweep = SweepSpec.grid("plain", scenario, schemes=("CPVF",), axes={})
        assert all(run.network is None for run in sweep.runs)
