"""Scenario/record serialization of lifecycle event timelines."""

from repro.api import RunRecord, RunSpec, ScenarioSpec
from repro.metrics import EventOutcome
from repro.sim import LifecycleEvent, sensor_failure, sensor_join


def test_scenario_spec_normalizes_and_round_trips_events():
    spec = ScenarioSpec(
        sensor_count=20,
        events=[
            sensor_failure(at_period=10, fraction=0.2),
            sensor_join(at_period=20, count=3).to_dict(),  # dicts accepted too
        ],
    )
    assert all(isinstance(e, LifecycleEvent) for e in spec.events)
    assert ScenarioSpec.from_dict(spec.to_dict()) == spec


def test_scenario_spec_defaults_to_empty_timeline():
    spec = ScenarioSpec(sensor_count=10)
    assert spec.events == ()
    # Back-compat: dicts persisted before the events field load fine.
    data = spec.to_dict()
    del data["events"]
    assert ScenarioSpec.from_dict(data) == spec


def test_event_timeline_survives_replace():
    spec = ScenarioSpec(events=[sensor_failure(at_period=5, count=2)])
    bigger = spec.replace(sensor_count=99)
    assert bigger.events == spec.events
    assert bigger.sensor_count == 99


def test_run_record_round_trips_outcomes():
    outcome = EventOutcome(
        at_period=12,
        kind="failure",
        pre_coverage=0.8,
        post_coverage=0.6,
        best_coverage=0.79,
        final_coverage=0.78,
        recovery_ratio=0.9875,
        recovery_target=0.95,
        time_to_recover=9,
        extra_distance=123.5,
        message_burst=42,
    )
    record = RunRecord(
        spec=RunSpec(scenario=ScenarioSpec(sensor_count=8)),
        scheme="CPVF",
        coverage=0.78,
        average_moving_distance=10.0,
        total_moving_distance=80.0,
        total_messages=100,
        connected=True,
        events=(outcome,),
    )
    rebuilt = RunRecord.from_dict(record.to_dict())
    assert rebuilt == record
    assert rebuilt.events[0].time_to_recover == 9


def test_run_record_back_compat_without_events_key():
    record = RunRecord(
        spec=RunSpec(scenario=ScenarioSpec(sensor_count=8)),
        scheme="CPVF",
        coverage=0.5,
        average_moving_distance=1.0,
        total_moving_distance=8.0,
        total_messages=10,
        connected=True,
    )
    data = record.to_dict()
    del data["events"]
    assert RunRecord.from_dict(data) == record
