"""Spec/record construction, grid expansion and JSON round-trips."""

import json

import pytest

from repro.api import (
    RunRecord,
    RunSpec,
    ScenarioSpec,
    SweepSpec,
    TracePoint,
    derive_seed,
    spawn_seeds,
)


def small_scenario(**overrides):
    defaults = dict(
        field_size=300.0,
        sensor_count=24,
        duration=80.0,
        coverage_resolution=15.0,
        seed=2,
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


class TestScenarioSpec:
    def test_params_accept_dicts_and_freeze(self):
        spec = small_scenario(
            layout="random-obstacles", layout_params={"seed": 9, "min_side": 20.0}
        )
        assert spec.layout_params == (("min_side", 20.0), ("seed", 9))
        # Frozen and hashable: usable as a dict key.
        assert {spec: 1}[spec] == 1

    def test_json_round_trip(self):
        spec = small_scenario(
            layout="two-obstacle",
            placement="uniform",
            invitation_ttl=7,
            oscillation_delta=4.0,
        )
        restored = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored == spec

    def test_replace(self):
        spec = small_scenario()
        assert spec.replace(seed=5).seed == 5
        assert spec.seed == 2


class TestRunSpecAndRecord:
    def test_run_spec_round_trip(self):
        spec = RunSpec(
            scenario=small_scenario(),
            scheme="VOR",
            scheme_params={"rounds": 3, "check_voronoi": True},
            trace_every=10,
            keep_positions=True,
            tags={"ratio": 1.5, "label": "x"},
        )
        restored = RunSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored == spec
        assert restored.tag("ratio") == 1.5

    def test_run_record_json_round_trip(self):
        record = RunRecord(
            spec=RunSpec(scenario=small_scenario(), scheme="CPVF", trace_every=5),
            scheme="CPVF",
            coverage=0.42,
            average_moving_distance=12.5,
            total_moving_distance=300.0,
            total_messages=123,
            connected=True,
            periods_executed=80,
            converged_at=None,
            extras={"obstacle_count": 2},
            trace=(
                TracePoint(5.0, 0.3, 4.0, 50, 20),
                TracePoint(10.0, 0.42, 8.0, 100, 24),
            ),
            final_positions=((1.0, 2.0), (3.0, 4.5)),
        )
        payload = json.dumps(record.to_dict())
        restored = RunRecord.from_dict(json.loads(payload))
        assert restored == record
        assert restored.extra("obstacle_count") == 2
        assert restored.trace[1].coverage == pytest.approx(0.42)
        assert restored.final_positions == ((1.0, 2.0), (3.0, 4.5))

    def test_messages_per_node(self):
        record = RunRecord(
            spec=RunSpec(scenario=small_scenario(sensor_count=10)),
            scheme="CPVF",
            coverage=0.1,
            average_moving_distance=0.0,
            total_moving_distance=0.0,
            total_messages=50,
            connected=False,
        )
        assert record.messages_per_node() == pytest.approx(5.0)


class TestSweepGrid:
    def test_grid_expands_cartesian_axes(self):
        sweep = SweepSpec.grid(
            "grid",
            small_scenario(),
            schemes=("CPVF", "FLOOR"),
            axes={
                "communication_range": [30.0, 60.0],
                "sensor_count": [12, 24, 36],
            },
        )
        assert len(sweep) == 2 * 2 * 3
        # Every run is tagged with its axis values.
        first = sweep.runs[0]
        assert first.tag("communication_range") == 30.0
        assert first.tag("sensor_count") == 12
        assert first.scenario.communication_range == 30.0

    def test_grid_seed_axis_combines_with_repetitions(self):
        # A seed axis must yield distinct repetition seeds per axis value
        # (the spawn derives from the post-override scenario seed).
        sweep = SweepSpec.grid(
            "seeded", small_scenario(), axes={"seed": [1, 2, 3]}, repetitions=2
        )
        seeds = [run.scenario.seed for run in sweep.runs]
        assert len(seeds) == 6
        assert len(set(seeds)) == 6

    def test_grid_repetitions_spawn_deterministic_seeds(self):
        sweep_a = SweepSpec.grid("reps", small_scenario(), repetitions=3)
        sweep_b = SweepSpec.grid("reps", small_scenario(), repetitions=3)
        assert sweep_a == sweep_b
        seeds = [run.scenario.seed for run in sweep_a.runs]
        assert len(set(seeds)) == 3
        assert [run.tag("rep") for run in sweep_a.runs] == [0, 1, 2]

    def test_sweep_json_round_trip(self):
        sweep = SweepSpec.grid(
            "rt", small_scenario(), schemes=("CPVF",), repetitions=2
        )
        restored = SweepSpec.from_dict(json.loads(json.dumps(sweep.to_dict())))
        assert restored == sweep


class TestSeedDerivation:
    def test_derive_seed_is_pure_and_distinct(self):
        assert derive_seed(1, 0) == derive_seed(1, 0)
        assert derive_seed(1, 0) != derive_seed(1, 1)
        assert derive_seed(1, 0) != derive_seed(2, 0)
        assert derive_seed(1, 0, "obstacles") != derive_seed(1, 0)

    def test_spawn_seeds(self):
        seeds = spawn_seeds(7, 100)
        assert len(seeds) == 100
        assert len(set(seeds)) == 100
        assert all(0 <= s < 2**31 for s in seeds)
