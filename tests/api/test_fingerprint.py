"""Content-address stability of :func:`repro.api.run_fingerprint`.

The fingerprint is the identity of a run in the content-addressed store
(``repro.service``): two specs that would execute the same simulation
must collide, any semantic difference must separate, and the digest must
be stable across JSON round-trips, construction orders and processes —
otherwise a warm store silently recomputes (or worse, serves the wrong
record).
"""

import json
import os
import subprocess
import sys
import textwrap

from repro.api import (
    SPEC_SCHEMA_VERSION,
    RunSpec,
    ScenarioSpec,
    canonical_json,
    run_fingerprint,
)


def small_spec(**overrides):
    scenario_kwargs = dict(
        field_size=300.0,
        sensor_count=12,
        duration=20.0,
        coverage_resolution=15.0,
        seed=2,
    )
    scenario_kwargs.update(overrides.pop("scenario_overrides", {}))
    scenario = ScenarioSpec(**scenario_kwargs)
    defaults = dict(scenario=scenario, scheme="CPVF")
    defaults.update(overrides)
    return RunSpec(**defaults)


class TestFingerprintStability:
    def test_is_a_hex_digest(self):
        fp = small_spec().fingerprint()
        assert len(fp) == 40
        int(fp, 16)

    def test_key_order_invariance(self):
        a = small_spec(
            scheme_params={"mode": "batched", "gamma": 2.0},
            scenario_overrides={"layout_params": {"seed": 9, "density": 0.1}},
        )
        b = small_spec(
            scheme_params={"gamma": 2.0, "mode": "batched"},
            scenario_overrides={"layout_params": {"density": 0.1, "seed": 9}},
        )
        assert a.fingerprint() == b.fingerprint()

    def test_json_round_trip_preserves_fingerprint(self):
        spec = small_spec(
            scheme_params={"mode": "vectorized"}, trace_every=5, tags={"rep": 1}
        )
        reparsed = RunSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert reparsed.fingerprint() == spec.fingerprint()

    def test_module_function_matches_method(self):
        spec = small_spec()
        assert run_fingerprint(spec) == spec.fingerprint()


class TestFingerprintDiscrimination:
    def test_semantic_changes_alter_fingerprint(self):
        base = small_spec()
        variants = [
            small_spec(scheme="FLOOR"),
            small_spec(scheme_params={"mode": "batched"}),
            small_spec(trace_every=5),
            small_spec(keep_positions=True),
            small_spec(scenario_overrides={"seed": 3}),
            small_spec(scenario_overrides={"communication_range": 45.0}),
            small_spec(
                scenario_overrides={
                    "events": [
                        {"at_period": 4, "kind": "failure", "params": {"count": 2}}
                    ]
                }
            ),
        ]
        fingerprints = {spec.fingerprint() for spec in variants}
        assert base.fingerprint() not in fingerprints
        assert len(fingerprints) == len(variants)

    def test_tags_are_bookkeeping_not_identity(self):
        assert (
            small_spec(tags={"client": "a", "rep": 0}).fingerprint()
            == small_spec().fingerprint()
        )

    def test_schema_version_partitions_fingerprints(self, monkeypatch):
        import repro.api.specs as specs_module

        before = small_spec().fingerprint()
        monkeypatch.setattr(
            specs_module, "SPEC_SCHEMA_VERSION", SPEC_SCHEMA_VERSION + 1
        )
        assert small_spec().fingerprint() != before


class TestCrossProcessStability:
    def test_fingerprint_is_process_independent(self):
        """A store written by one process must be readable by any other.

        The child runs under a different ``PYTHONHASHSEED``, so any
        hidden reliance on dict/set iteration order would show up here.
        """
        spec = small_spec(
            scheme_params={"mode": "batched", "gamma": 2.0},
            tags={"client": "x"},
            scenario_overrides={"layout_params": {"seed": 9}},
        )
        program = textwrap.dedent(
            """
            import json, sys
            from repro.api import RunSpec

            spec = RunSpec.from_dict(json.loads(sys.stdin.read()))
            print(spec.fingerprint())
            """
        )
        import repro

        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = "12345"
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [src_dir, env.get("PYTHONPATH")])
        )
        child = subprocess.run(
            [sys.executable, "-c", program],
            input=json.dumps(spec.to_dict()),
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        assert child.stdout.strip() == spec.fingerprint()


class TestCanonicalJson:
    def test_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

    def test_rejects_nan(self):
        import pytest

        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})
