"""Store-bound :class:`SweepRunner`: write-through, resume, sharded writes."""

import pytest

from repro.api import ScenarioSpec, SweepRunner, SweepSpec
from repro.service import RunStore


def tiny_sweep(values=(40.0, 50.0, 60.0)):
    scenario = ScenarioSpec(
        field_size=250.0,
        sensor_count=10,
        duration=12.0,
        coverage_resolution=25.0,
        seed=3,
    )
    return SweepSpec.grid(
        "store-sweep",
        scenario,
        schemes=("CPVF",),
        axes={"communication_range": list(values)},
    )


@pytest.fixture(scope="module")
def serial_records():
    return SweepRunner(jobs=1).run(tiny_sweep())


class TestWriteThrough:
    def test_cold_store_run_matches_plain_run(self, tmp_path, serial_records):
        runner = SweepRunner(jobs=1, store=tmp_path / "store")
        records = runner.run(tiny_sweep())
        assert records == serial_records
        assert runner.last_cache == {"cells": 3, "hits": 0, "computed": 3}
        assert len(RunStore(tmp_path / "store")) == 3

    def test_store_accepts_path_string_or_instance(self, tmp_path, serial_records):
        store = RunStore(tmp_path / "store")
        assert SweepRunner(jobs=1, store=str(store.root)).run(
            tiny_sweep()
        ) == serial_records
        assert SweepRunner(jobs=1, store=store, reuse=True).run(
            tiny_sweep()
        ) == serial_records

    def test_plain_runner_reports_everything_computed(self, serial_records):
        runner = SweepRunner(jobs=1)
        runner.run(tiny_sweep())
        assert runner.last_cache == {"cells": 3, "hits": 0, "computed": 3}


class TestResume:
    def test_warm_rerun_recomputes_nothing(self, tmp_path, serial_records):
        store = tmp_path / "store"
        SweepRunner(jobs=1, store=store).run(tiny_sweep())
        runner = SweepRunner(jobs=1, store=store, reuse=True)
        assert runner.run(tiny_sweep()) == serial_records
        assert runner.last_cache == {"cells": 3, "hits": 3, "computed": 0}

    def test_partial_store_recomputes_only_missing(self, tmp_path, serial_records):
        store = RunStore(tmp_path / "store")
        SweepRunner(jobs=1, store=store).run(tiny_sweep())
        # Simulate a killed run: drop one cell.
        dropped = serial_records[1].spec.fingerprint()
        store.path_for(dropped).unlink()

        runner = SweepRunner(jobs=1, store=store, reuse=True)
        assert runner.run(tiny_sweep()) == serial_records
        assert runner.last_cache == {"cells": 3, "hits": 2, "computed": 1}
        assert dropped in store  # the recomputed cell was written back

    def test_overlapping_sweep_recomputes_only_difference(
        self, tmp_path, serial_records
    ):
        store = tmp_path / "store"
        SweepRunner(jobs=1, store=store).run(tiny_sweep(values=(40.0, 50.0)))
        runner = SweepRunner(jobs=1, store=store, reuse=True)
        assert runner.run(tiny_sweep()) == serial_records
        assert runner.last_cache == {"cells": 3, "hits": 2, "computed": 1}

    def test_refresh_mode_recomputes_but_still_writes(
        self, tmp_path, serial_records
    ):
        store = tmp_path / "store"
        SweepRunner(jobs=1, store=store).run(tiny_sweep())
        runner = SweepRunner(jobs=1, store=store, reuse=False)
        assert runner.run(tiny_sweep()) == serial_records
        assert runner.last_cache == {"cells": 3, "hits": 0, "computed": 3}
        assert len(RunStore(store)) == 3


class TestShardedWrites:
    def test_worker_processes_write_through(self, tmp_path, serial_records):
        runner = SweepRunner(jobs=2, store=tmp_path / "store")
        assert runner.run(tiny_sweep()) == serial_records
        store = RunStore(tmp_path / "store")
        assert len(store) == 3
        for record in serial_records:
            assert store.get(record.spec) == record

    def test_sharded_resume_matches_serial(self, tmp_path, serial_records):
        SweepRunner(jobs=1, store=tmp_path / "store").run(
            tiny_sweep(values=(40.0, 50.0))
        )
        runner = SweepRunner(jobs=2, store=tmp_path / "store", reuse=True)
        assert runner.run(tiny_sweep()) == serial_records
        assert runner.last_cache == {"cells": 3, "hits": 2, "computed": 1}
