"""ScenarioSpec world construction: one-pass placement, registry errors."""

import pytest

from repro.api import ScenarioSpec
from repro.experiments import SMOKE_SCALE, make_config, make_scenario, make_world


class TestBuildWorld:
    def test_positions_drawn_exactly_once_from_seed_stream(self):
        spec = make_scenario(SMOKE_SCALE, seed=13)
        field = spec.build_field()
        # The world's placement is the scenario's deterministic first draw.
        expected = spec.initial_positions(field)
        world = spec.build_world()
        assert [s.position for s in world.sensors] == expected
        # Building twice gives the same placement (pure function of the spec).
        again = spec.build_world()
        assert [s.position for s in again.sensors] == expected

    def test_matches_legacy_make_world(self):
        # The scenario path and the legacy helper agree on the placement,
        # so experiment results are comparable across the two entry points.
        spec = make_scenario(SMOKE_SCALE, seed=4)
        config = make_config(SMOKE_SCALE, seed=4)
        world_new = spec.build_world()
        world_old = make_world(config, SMOKE_SCALE)
        assert [s.position for s in world_new.sensors] == [
            s.position for s in world_old.sensors
        ]

    def test_clustered_placement_stays_in_cluster_square(self):
        spec = make_scenario(SMOKE_SCALE, seed=3)
        world = spec.build_world()
        half = SMOKE_SCALE.field_size / 2.0
        for sensor in world.sensors:
            assert sensor.position.x <= half + 1e-9
            assert sensor.position.y <= half + 1e-9

    def test_uniform_placement_spreads_over_field(self):
        spec = make_scenario(SMOKE_SCALE, seed=3, placement="uniform")
        positions = spec.initial_positions()
        half = SMOKE_SCALE.field_size / 2.0
        assert any(p.x > half or p.y > half for p in positions)

    def test_build_config_mirrors_scenario(self):
        spec = make_scenario(
            SMOKE_SCALE,
            communication_range=45.0,
            sensing_range=25.0,
            seed=9,
            invitation_ttl=6,
            oscillation_delta=2.0,
            oscillation_mode="two-step",
        )
        config = spec.build_config()
        assert config.communication_range == 45.0
        assert config.sensing_range == 25.0
        assert config.seed == 9
        assert config.invitation_ttl == 6
        assert config.oscillation_delta == 2.0
        assert config.oscillation_mode == "two-step"
        assert config.clustered_start is True

    def test_unknown_layout_and_placement_raise_with_available(self):
        with pytest.raises(KeyError, match=r"unknown field layout.*obstacle-free"):
            ScenarioSpec(layout="nope").build_field()
        with pytest.raises(KeyError, match=r"unknown placement.*clustered"):
            ScenarioSpec(placement="nope").initial_positions()

    def test_random_obstacle_layout_is_reproducible(self):
        spec = ScenarioSpec(
            field_size=300.0,
            layout="random-obstacles",
            layout_params={"seed": 11},
            sensor_count=8,
        )
        first = spec.build_field()
        second = spec.build_field()
        assert [o.bounding_box() for o in first.obstacles] == [
            o.bounding_box() for o in second.obstacles
        ]
        assert first.free_space_connected()
