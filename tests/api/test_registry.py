"""Registry round-trips and error behaviour."""

import pytest

from repro.api import (
    Registry,
    SchemeAdapter,
    layout_registry,
    placement_registry,
    register_scheme,
    scheme_registry,
)


class TestRegistry:
    def test_register_and_get_round_trip(self):
        registry = Registry("thing")
        sentinel = object()
        registry.register("Alpha", sentinel)
        assert registry.get("Alpha") is sentinel
        assert registry.get("alpha") is sentinel  # case-insensitive
        assert registry.get("ALPHA") is sentinel
        assert "alpha" in registry
        assert registry.names() == ["Alpha"]
        assert registry.canonical_name("aLpHa") == "Alpha"

    def test_decorator_round_trip_instantiates_classes(self):
        registry = Registry("widget")

        @registry.register("MyWidget")
        class Widget:
            pass

        assert isinstance(registry.get("mywidget"), Widget)

    def test_unknown_name_raises_with_available_list(self):
        registry = Registry("gadget")
        registry.register("One", 1)
        registry.register("Two", 2)
        with pytest.raises(KeyError, match=r"unknown gadget 'Three'.*One.*Two"):
            registry.get("Three")

    def test_duplicate_registration_rejected(self):
        registry = Registry("thing")
        registry.register("X", 1)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("x", 2)
        # Re-registering the identical object is harmless (idempotent)...
        registry.register("X", 1)
        # ...but a different casing of the name is rejected even for the
        # same object (it would corrupt the canonical-name table).
        with pytest.raises(ValueError, match="already registered"):
            registry.register("x", 1)
        assert registry.names() == ["X"]
        assert len(registry) == 1

    def test_unregister(self):
        registry = Registry("thing")
        registry.register("Gone", 1)
        registry.unregister("gone")
        assert "Gone" not in registry
        with pytest.raises(KeyError):
            registry.unregister("Gone")


class TestBuiltinRegistries:
    def test_builtin_schemes_registered(self):
        for name in ("CPVF", "FLOOR", "VOR", "Minimax", "OPT", "OPT-Hungarian"):
            assert name in scheme_registry
            assert isinstance(scheme_registry.get(name), SchemeAdapter)

    def test_builtin_layouts_and_placements(self):
        for name in ("obstacle-free", "two-obstacle", "corridor", "random-obstacles"):
            assert name in layout_registry
        for name in ("clustered", "uniform"):
            assert name in placement_registry

    def test_unknown_scheme_lists_available(self):
        with pytest.raises(KeyError, match=r"unknown scheme.*CPVF.*FLOOR"):
            scheme_registry.get("definitely-not-a-scheme")

    def test_layout_builders_build_fields(self):
        free = layout_registry.get("obstacle-free")(200.0)
        assert free.width == 200.0 and not free.obstacles
        walled = layout_registry.get("two-obstacle")(200.0)
        assert len(walled.obstacles) == 2
        random_field = layout_registry.get("random-obstacles")(200.0, seed=5)
        assert 1 <= len(random_field.obstacles) <= 4
        # Same seed -> same layout; the field is pure data from its params.
        again = layout_registry.get("random-obstacles")(200.0, seed=5)
        assert [o.bounding_box() for o in random_field.obstacles] == [
            o.bounding_box() for o in again.obstacles
        ]

    def test_register_scheme_decorator_round_trip(self):
        @register_scheme("TestOnlyScheme")
        class TestOnlyAdapter(SchemeAdapter):
            name = "TestOnlyScheme"

            def execute(self, spec):  # pragma: no cover - never run
                raise NotImplementedError

        try:
            assert scheme_registry.get("testonlyscheme").name == "TestOnlyScheme"
        finally:
            scheme_registry.unregister("TestOnlyScheme")
