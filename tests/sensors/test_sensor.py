"""Tests for the sensor node model and its states."""

import pytest

from repro.geometry import Vec2
from repro.mobility import MotionModel
from repro.sensors import Sensor, SensorState


def make_sensor(rc=60.0, rs=40.0) -> Sensor:
    return Sensor(
        sensor_id=7,
        motion=MotionModel(position=Vec2(10, 20), max_speed=2.0, period=1.0),
        communication_range=rc,
        sensing_range=rs,
    )


class TestSensor:
    def test_initial_state_is_disconnected(self):
        assert make_sensor().state is SensorState.DISCONNECTED
        assert not make_sensor().is_connected()

    def test_position_delegates_to_motion(self):
        sensor = make_sensor()
        assert sensor.position == Vec2(10, 20)
        sensor.position = Vec2(0, 0)
        assert sensor.motion.position == Vec2(0, 0)

    def test_moving_distance_tracks_odometer(self):
        sensor = make_sensor()
        sensor.motion.move_to(Vec2(13, 24))
        assert sensor.moving_distance == pytest.approx(5.0)

    def test_disks(self):
        sensor = make_sensor(rc=50, rs=30)
        assert sensor.sensing_disk().radius == 30
        assert sensor.communication_disk().radius == 50

    def test_expansion_circle_radius(self):
        assert make_sensor(rc=60, rs=40).expansion_circle_radius() == 40
        assert make_sensor(rc=30, rs=40).expansion_circle_radius() == 30

    def test_in_communication_range(self):
        a = make_sensor(rc=60)
        b = make_sensor(rc=60)
        b.position = Vec2(10 + 59, 20)
        assert a.in_communication_range(b)
        b.position = Vec2(10 + 61, 20)
        assert not a.in_communication_range(b)

    def test_covers(self):
        sensor = make_sensor(rs=40)
        assert sensor.covers(Vec2(10, 59))
        assert not sensor.covers(Vec2(10, 61))

    def test_set_parent_records_ancestors(self):
        sensor = make_sensor()
        sensor.set_parent(3, [3, 1, -1])
        assert sensor.parent_id == 3
        assert sensor.ancestors == [3, 1, -1]


class TestSensorState:
    def test_connected_states(self):
        assert SensorState.CONNECTED.is_connected()
        assert SensorState.FIXED.is_connected()
        assert SensorState.MOVABLE.is_connected()
        assert SensorState.RELOCATING.is_connected()

    def test_disconnected_states(self):
        assert not SensorState.DISCONNECTED.is_connected()
        assert not SensorState.MOVING_TO_CONNECT.is_connected()
