"""Sinks and the report renderer: JSONL round-trip, sampling, timeline."""

import io
import json

import pytest

from repro.obs import JsonlSink, MemorySink, PeriodTrace, Telemetry
from repro.obs.report import (
    format_summary,
    format_timeline,
    load_trace,
    render_report,
)
from repro.obs.summary import TelemetrySummary


def _trace(period, messages=0):
    return PeriodTrace(
        period=period,
        time=float(period),
        coverage=0.5,
        average_moving_distance=1.0,
        total_messages=messages,
        connected_sensors=8,
    )


class TestJsonlSink:
    def test_summary_jsonl_roundtrip(self):
        buffer = io.StringIO()
        tel = Telemetry(sink=JsonlSink(buffer))
        with tel.span("phase.x"):
            pass
        tel.count("k", 7)
        tel.gauge("g", 1.5)
        expected = tel.close()

        summaries, _periods = load_trace(buffer.getvalue().splitlines())
        assert summaries == [expected]
        assert isinstance(summaries[0], TelemetrySummary)

    def test_sample_every_thins_periods(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer, sample_every=3)
        for period in range(7):
            sink.on_period(_trace(period))
        _summaries, periods = load_trace(buffer.getvalue().splitlines())
        assert [p.period for p in periods] == [0, 3, 6]

    def test_label_stamps_every_line(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer, label="run-abc")
        sink.on_period(_trace(0))
        payload = json.loads(buffer.getvalue())
        assert payload["run"] == "run-abc"

    def test_spans_off_by_default(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        sink.on_span("x", 0.001)
        assert buffer.getvalue() == ""
        noisy = io.StringIO()
        JsonlSink(noisy, write_spans=True).on_span("x", 0.001)
        assert json.loads(noisy.getvalue())["type"] == "span"

    def test_rejects_bad_sample_every(self):
        with pytest.raises(ValueError):
            JsonlSink(io.StringIO(), sample_every=0)

    def test_owns_path_appends(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        for _ in range(2):
            sink = JsonlSink(str(path))
            sink.on_period(_trace(0))
            sink.close()
        assert len(path.read_text().splitlines()) == 2


class TestMemorySink:
    def test_ring_buffer_drops_oldest(self):
        sink = MemorySink(capacity=2)
        for period in range(3):
            sink.on_period(_trace(period))
        assert [e["period"] for e in sink.of_type("period")] == [1, 2]

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            MemorySink(capacity=0)


class TestReport:
    def test_format_summary_lists_phases_and_counters(self):
        tel = Telemetry()
        with tel.span("engine.scheme_step"):
            pass
        tel.count("engine.periods", 5)
        text = format_summary(tel.summary(), title="t")
        assert "engine.scheme_step" in text
        assert "engine.periods" in text

    def test_format_timeline_burst_deltas(self):
        periods = [_trace(0, messages=10), _trace(1, messages=40)]
        text = format_timeline(periods, width=10)
        # Second interval (30 new messages) gets the longest bar.
        lines = text.splitlines()
        assert lines[-1].count("#") > lines[-2].count("#")

    def test_format_timeline_empty(self):
        assert "no period events" in format_timeline([])

    def test_render_report_merges_multiple_summaries(self):
        buffer = io.StringIO()
        for _ in range(2):
            tel = Telemetry(sink=JsonlSink(buffer))
            tel.count("runs", 1)
            tel.close()
        report = render_report(buffer.getvalue().splitlines())
        assert "runs" in report and "2" in report

    def test_load_trace_skips_unknown_types(self):
        lines = [json.dumps({"type": "future-thing", "x": 1})]
        assert load_trace(lines) == ([], [])
