"""Telemetry core: spans, counters, gauges, and the null object."""

import pytest

from repro.obs import (
    NULL_TELEMETRY,
    MemorySink,
    NullTelemetry,
    PeriodTrace,
    Telemetry,
)


class TestSpans:
    def test_span_aggregates_seconds_and_calls(self):
        tel = Telemetry()
        for _ in range(3):
            with tel.span("phase.a"):
                pass
        summary = tel.summary()
        assert summary.phases["phase.a"].calls == 3
        assert summary.phases["phase.a"].seconds >= 0.0

    def test_nested_distinct_spans(self):
        tel = Telemetry()
        with tel.span("outer"):
            with tel.span("inner"):
                pass
        summary = tel.summary()
        assert summary.phases["outer"].calls == 1
        assert summary.phases["inner"].calls == 1
        # The inner span's time is contained in the outer one's.
        assert summary.phases["inner"].seconds <= summary.phases["outer"].seconds

    def test_span_records_on_exception(self):
        tel = Telemetry()
        with pytest.raises(RuntimeError):
            with tel.span("boom"):
                raise RuntimeError("x")
        assert tel.summary().phases["boom"].calls == 1

    def test_phase_seconds_accessor(self):
        tel = Telemetry()
        assert tel.phase_seconds("missing") == 0.0
        with tel.span("p"):
            pass
        assert tel.phase_seconds("p") >= 0.0


class TestCountersAndGauges:
    def test_count_accumulates_integers(self):
        tel = Telemetry()
        tel.count("events")
        tel.count("events", 4)
        assert tel.counter("events") == 5
        assert tel.counter("missing") == 0

    def test_merge_counters(self):
        tel = Telemetry()
        tel.count("a", 1)
        tel.merge_counters({"a": 2, "b": 3})
        summary = tel.summary()
        assert summary.counters == {"a": 3, "b": 3}

    def test_gauge_last_wins(self):
        tel = Telemetry()
        tel.gauge("inflight", 4.0)
        tel.gauge("inflight", 2.0)
        assert tel.summary().gauges == {"inflight": 2.0}


class TestPeriodEvents:
    def test_record_period_reaches_sink(self):
        sink = MemorySink()
        tel = Telemetry(sink=sink)
        trace = PeriodTrace(
            period=3,
            time=30.0,
            coverage=0.5,
            average_moving_distance=1.0,
            total_messages=12,
            connected_sensors=10,
        )
        tel.record_period(trace)
        events = sink.of_type("period")
        assert len(events) == 1
        assert events[0]["period"] == 3

    def test_period_trace_roundtrip(self):
        trace = PeriodTrace(
            period=7,
            time=70.0,
            coverage=0.25,
            average_moving_distance=2.5,
            total_messages=99,
            connected_sensors=40,
        )
        assert PeriodTrace.from_dict(trace.to_dict()) == trace


class TestNullTelemetry:
    def test_disabled_and_shared(self):
        assert NULL_TELEMETRY.enabled is False
        assert isinstance(NULL_TELEMETRY, NullTelemetry)
        # All operations are no-ops and leave the summary empty.
        with NULL_TELEMETRY.span("x"):
            pass
        NULL_TELEMETRY.count("x", 5)
        NULL_TELEMETRY.gauge("g", 1.0)
        summary = NULL_TELEMETRY.summary()
        assert not summary.phases and not summary.counters and not summary.gauges

    def test_span_object_is_shared(self):
        # The hot-path contract: no allocation per span when disabled.
        assert NULL_TELEMETRY.span("a") is NULL_TELEMETRY.span("b")


class TestClose:
    def test_close_emits_summary_to_sink(self):
        sink = MemorySink()
        tel = Telemetry(sink=sink)
        tel.count("done", 1)
        summary = tel.close()
        assert summary.counters == {"done": 1}
        assert len(sink.of_type("summary")) == 1
