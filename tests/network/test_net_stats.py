"""Tests for delivery-condition (net.*) accounting in MessageStats."""

import pytest

from repro.network import MessageStats, MessageType, NET_COUNTER_KEYS


def degraded_stats():
    stats = MessageStats()
    stats.record_transmissions(MessageType.CONNECTIVITY_FLOOD, 4)
    stats.record_transmissions(MessageType.INVITATION, 9)
    stats.record_net("dropped", 3)
    stats.record_net("retries", 2)
    stats.record_net("timeouts")
    return stats


def test_record_net_validates_key_and_count():
    stats = MessageStats()
    with pytest.raises(ValueError):
        stats.record_net("packets_eaten")
    with pytest.raises(ValueError):
        stats.record_net("dropped", -1)
    stats.record_net("dropped", 0)
    assert stats.net_counts == {}


def test_to_counters_appends_net_keys_after_total():
    counters = degraded_stats().to_counters()
    names = list(counters)
    assert names.index("messages.total") < names.index("net.dropped")
    assert counters["net.dropped"] == 3
    assert counters["net.retries"] == 2
    assert counters["net.timeouts"] == 1
    assert "net.delayed" not in counters  # zero counters stay omitted


def test_perfect_counters_unchanged():
    stats = MessageStats()
    stats.record_transmissions(MessageType.INVITATION, 5)
    assert list(stats.to_counters()) == ["messages.invitation", "messages.total"]


def test_from_counters_round_trip():
    stats = degraded_stats()
    rebuilt = MessageStats.from_counters(stats.to_counters())
    assert rebuilt.counts == stats.counts
    assert rebuilt.net_counts == stats.net_counts


def test_from_counters_rejects_unknown_names():
    with pytest.raises(ValueError):
        MessageStats.from_counters({"messages.carrier_pigeon": 1})
    with pytest.raises(ValueError):
        MessageStats.from_counters({"net.packets_eaten": 1})
    with pytest.raises(ValueError):
        MessageStats.from_counters({"bananas": 1})


def test_merge_carries_net_counts():
    merged = degraded_stats().merge(degraded_stats())
    assert merged.net_counts["dropped"] == 6
    assert merged.net_counts["retries"] == 4
    assert merged.total() == 26


def test_diff_carries_net_counts():
    stats = degraded_stats()
    snap = stats.snapshot()
    stats.record_net("dropped", 2)
    stats.record_net("stale_reads", 7)
    delta = stats.diff(snap)
    assert delta.net_counts == {"dropped": 2, "stale_reads": 7}
    assert delta.counts == {}


def test_diff_rejects_higher_net_snapshot():
    stats = degraded_stats()
    later = stats.snapshot()
    later.record_net("dropped", 10)
    with pytest.raises(ValueError):
        stats.diff(later)


def test_reset_clears_net_counts():
    stats = degraded_stats()
    stats.reset()
    assert stats.net_counts == {}
    assert stats.to_counters() == {"messages.total": 0}


def test_per_period_rates():
    rates = degraded_stats().per_period(4)
    assert rates["messages.total"] == 13 / 4
    assert rates["net.dropped"] == 0.75
    with pytest.raises(ValueError):
        degraded_stats().per_period(0)


def test_net_counter_keys_are_the_schema():
    assert NET_COUNTER_KEYS == (
        "dropped",
        "delayed",
        "retries",
        "timeouts",
        "stale_reads",
    )
