"""Property-based tests for the connectivity tree under random operations."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.network import BASE_STATION_ID, ConnectivityTree


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=2, max_value=25))
def test_random_attach_reparent_sequences_keep_tree_consistent(seed, node_count):
    """Arbitrary sequences of attach/reparent operations never corrupt the tree."""
    rng = random.Random(seed)
    tree = ConnectivityTree()
    members = []
    for node_id in range(node_count):
        parent = BASE_STATION_ID if not members else rng.choice(members + [BASE_STATION_ID])
        tree.attach(node_id, parent)
        members.append(node_id)

    for _ in range(2 * node_count):
        node = rng.choice(members)
        new_parent = rng.choice(members + [BASE_STATION_ID])
        moved = tree.reparent(node, new_parent)
        if new_parent == node or tree.is_descendant(new_parent, node):
            # A refused move must leave everything intact; an accepted one is
            # validated below anyway.
            pass
        if moved:
            assert tree.parent_of(node) == new_parent

    # Invariants: structure validates, every node reaches the base station,
    # and subtree relations are consistent with ancestor chains.
    tree.validate()
    for node in members:
        ancestors = tree.ancestors_of(node)
        assert ancestors[-1] == BASE_STATION_ID
        for ancestor in ancestors[:-1]:
            assert node in tree.subtree_of(ancestor)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=2, max_value=20))
def test_subtrees_partition_children(seed, node_count):
    """The subtrees of the base station's children partition all nodes."""
    rng = random.Random(seed)
    tree = ConnectivityTree()
    members = []
    for node_id in range(node_count):
        parent = BASE_STATION_ID if not members else rng.choice(members + [BASE_STATION_ID])
        tree.attach(node_id, parent)
        members.append(node_id)

    roots = tree.children_of(BASE_STATION_ID)
    seen = set()
    for root in roots:
        subtree = tree.subtree_of(root)
        assert not (subtree & seen), "subtrees of distinct roots must be disjoint"
        seen |= subtree
    assert seen == set(members)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=1, max_value=20))
def test_lock_cost_is_twice_subtree_edges(seed, node_count):
    rng = random.Random(seed)
    tree = ConnectivityTree()
    members = []
    for node_id in range(node_count):
        parent = BASE_STATION_ID if not members else rng.choice(members + [BASE_STATION_ID])
        tree.attach(node_id, parent)
        members.append(node_id)
    node = rng.choice(members)
    size = len(tree.subtree_of(node))
    assert tree.lock_subtree_message_count(node) == 2 * (size - 1)
