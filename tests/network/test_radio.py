"""Tests for the unit-disk radio model."""

import pytest

from repro.field import Field, Obstacle
from repro.geometry import Vec2
from repro.mobility import MotionModel
from repro.network import Radio
from repro.sensors import Sensor


def make_sensor(sensor_id: int, x: float, y: float, rc: float = 30.0) -> Sensor:
    return Sensor(
        sensor_id=sensor_id,
        motion=MotionModel(position=Vec2(x, y), max_speed=2.0, period=1.0),
        communication_range=rc,
        sensing_range=20.0,
    )


class TestLinks:
    def test_link_within_range(self):
        radio = Radio(Field(100, 100))
        assert radio.link_exists(Vec2(0, 0), Vec2(0, 29), 30.0)

    def test_no_link_beyond_range(self):
        radio = Radio(Field(100, 100))
        assert not radio.link_exists(Vec2(0, 0), Vec2(0, 31), 30.0)

    def test_line_of_sight_blocking(self):
        field = Field(100, 100, [Obstacle.rectangle(40, 0, 60, 100)])
        blocking = Radio(field, line_of_sight=True)
        transparent = Radio(field, line_of_sight=False)
        assert not blocking.link_exists(Vec2(30, 50), Vec2(70, 50), 100.0)
        assert transparent.link_exists(Vec2(30, 50), Vec2(70, 50), 100.0)


class TestNeighborTables:
    def test_neighbor_table_symmetry(self):
        radio = Radio(Field(200, 200))
        sensors = [make_sensor(0, 0, 0), make_sensor(1, 20, 0), make_sensor(2, 100, 100)]
        table = radio.neighbor_table(sensors)
        assert 1 in table[0] and 0 in table[1]
        assert table[2] == []

    def test_empty_population(self):
        radio = Radio(Field(200, 200))
        assert radio.neighbor_table([]) == {}

    def test_neighbors_of_point(self):
        radio = Radio(Field(200, 200))
        sensors = [make_sensor(0, 10, 0), make_sensor(1, 50, 0)]
        assert radio.neighbors_of_point(Vec2(0, 0), sensors, 30.0) == [0]


class TestConnectivity:
    def test_connected_chain(self):
        radio = Radio(Field(200, 200))
        sensors = [make_sensor(i, 25.0 * i, 0.0) for i in range(5)]
        assert radio.network_is_connected(sensors, Vec2(0, 0), 30.0)

    def test_broken_chain(self):
        radio = Radio(Field(400, 400))
        sensors = [make_sensor(0, 20, 0), make_sensor(1, 45, 0), make_sensor(2, 300, 0)]
        assert not radio.network_is_connected(sensors, Vec2(0, 0), 30.0)
        component = radio.connected_component_of(sensors, Vec2(0, 0), 30.0)
        assert component == {0, 1}

    def test_isolated_base_station(self):
        radio = Radio(Field(400, 400))
        sensors = [make_sensor(0, 300, 300)]
        assert radio.connected_component_of(sensors, Vec2(0, 0), 30.0) == set()
        assert not radio.network_is_connected(sensors, Vec2(0, 0), 30.0)

    def test_empty_network_is_connected(self):
        radio = Radio(Field(100, 100))
        assert radio.network_is_connected([], Vec2(0, 0), 30.0)
