"""Tests for the pluggable network-condition models."""

import pytest

from repro.network import (
    MessageStats,
    NetworkSpec,
    PERFECT_NETWORK,
    PerfectNetwork,
    UnreliableNetwork,
)


class FakeWorld:
    """The minimal world surface the condition models consult."""

    def __init__(self, table=None):
        self.period_index = 0
        self.population_version = 0
        self.stats = MessageStats()
        self._table = table if table is not None else {1: [2], 2: [1]}

    def neighbor_table(self):
        return {k: list(v) for k, v in self._table.items()}

    def neighbor_rows(self, sensor_ids):
        return {sid: list(self._table.get(sid, [])) for sid in sensor_ids}


class TestNetworkSpec:
    def test_default_spec_is_structural_and_builds_perfect(self):
        spec = NetworkSpec()
        assert spec.is_structural()
        assert spec.build(seed=1) is PERFECT_NETWORK

    def test_degenerate_unreliable_spec_builds_perfect(self):
        spec = NetworkSpec(model="unreliable")
        assert spec.is_structural()
        assert spec.build(seed=1) is PERFECT_NETWORK

    def test_degraded_spec_builds_unreliable(self):
        spec = NetworkSpec(model="unreliable", loss=0.1, staleness=5)
        assert not spec.is_structural()
        net = spec.build(seed=9)
        assert isinstance(net, UnreliableNetwork)
        assert net.seed == 9
        assert net.loss == 0.1
        assert net.staleness == 5

    def test_staleness_of_one_is_still_structural(self):
        assert NetworkSpec(model="unreliable", staleness=1).is_structural()

    def test_round_trip(self):
        spec = NetworkSpec(
            model="unreliable", loss=0.05, latency=2, staleness=4, retry_limit=1
        )
        assert NetworkSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_applies_defaults(self):
        assert NetworkSpec.from_dict({}) == NetworkSpec()
        assert NetworkSpec.from_dict({"model": "unreliable", "loss": 0.2}) == (
            NetworkSpec(model="unreliable", loss=0.2)
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"model": "carrier-pigeon"},
            {"model": "unreliable", "loss": 1.0},
            {"model": "unreliable", "loss": -0.1},
            {"model": "unreliable", "latency": -1},
            {"model": "unreliable", "staleness": -1},
            {"model": "unreliable", "retry_limit": -1},
            {"model": "perfect", "loss": 0.1},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            NetworkSpec(**kwargs)


class TestPerfectNetwork:
    def test_everything_is_a_pass_through(self):
        world = FakeWorld()
        net = PerfectNetwork()
        assert net.is_perfect and not net.lossy
        assert net.neighbor_table(world) == world.neighbor_table()
        assert net.neighbor_rows(world, [1]) == {1: [2]}
        assert net.exchange(world, ("x",), 5) == (True, 1)
        assert net.walk_hops(world, ("w",), 7) == 7
        assert world.stats.net_counts == {}


class TestDegenerateUnreliable:
    def test_zero_knobs_behave_like_perfect(self):
        world = FakeWorld()
        net = UnreliableNetwork(seed=3)
        assert not net.lossy
        assert net.neighbor_table(world) == world.neighbor_table()
        assert net.exchange(world, ("x",), 5) == (True, 1)
        assert net.walk_hops(world, ("w",), 7) == 7
        assert world.stats.net_counts == {}


class TestExchange:
    def test_deterministic_across_instances(self):
        outcomes = []
        for _ in range(2):
            world = FakeWorld()
            net = UnreliableNetwork(seed=11, loss=0.3)
            outcomes.append(
                [net.exchange(world, ("msg", i), 2) for i in range(50)]
            )
        assert outcomes[0] == outcomes[1]

    def test_distinct_keys_and_periods_draw_independently(self):
        world = FakeWorld()
        net = UnreliableNetwork(seed=11, loss=0.5)
        by_key = [net.exchange(world, ("msg", i))[1] for i in range(40)]
        world.period_index = 1
        by_period = [net.exchange(world, ("msg", i))[1] for i in range(40)]
        assert by_key != by_period
        assert len(set(by_key)) > 1

    def test_timeout_exhausts_budget_and_counts(self):
        world = FakeWorld()
        net = UnreliableNetwork(seed=1, loss=0.95, retry_limit=2)
        # With 95% loss some key times out quickly; find one and check the
        # accounting of a full exhaustion.
        for i in range(100):
            probe = FakeWorld()
            delivered, attempts = net.exchange(probe, ("m", i), 3)
            if not delivered:
                assert attempts == 3  # retry_limit + 1
                assert probe.stats.net_counts["dropped"] == 3
                assert probe.stats.net_counts["timeouts"] == 1
                assert probe.stats.net_counts["retries"] == 2
                # Exponential backoff: 1 + 2 periods of accumulated delay.
                assert probe.stats.net_counts["delayed"] == 3
                break
        else:
            pytest.fail("no timeout observed at 95% loss")
        assert world.stats.net_counts == {}

    def test_success_after_retry_counts_retries_not_timeouts(self):
        net = UnreliableNetwork(seed=5, loss=0.6, retry_limit=3)
        for i in range(200):
            world = FakeWorld()
            delivered, attempts = net.exchange(world, ("m", i))
            if delivered and attempts > 1:
                assert world.stats.net_counts["retries"] == attempts - 1
                assert world.stats.net_counts["dropped"] == attempts - 1
                assert "timeouts" not in world.stats.net_counts
                break
        else:
            pytest.fail("no retried success observed at 60% loss")

    def test_retry_charge_called_once_per_retry(self):
        net = UnreliableNetwork(seed=5, loss=0.6, retry_limit=3)
        for i in range(200):
            world = FakeWorld()
            charges = []
            delivered, attempts = net.exchange(
                world, ("m", i), retry_charge=lambda: charges.append(1)
            )
            if attempts > 1:
                assert len(charges) == attempts - 1
                break
        else:
            pytest.fail("no retry observed at 60% loss")

    def test_wider_critical_path_fails_more(self):
        net = UnreliableNetwork(seed=2, loss=0.2, retry_limit=0)
        narrow = sum(
            net.exchange(FakeWorld(), ("n", i), 1)[0] for i in range(300)
        )
        wide = sum(
            net.exchange(FakeWorld(), ("w", i), 10)[0] for i in range(300)
        )
        assert wide < narrow


class TestWalkHops:
    def test_deterministic_and_bounded(self):
        net = UnreliableNetwork(seed=7, loss=0.3)
        world = FakeWorld()
        hops = [net.walk_hops(world, ("walk", i), 8) for i in range(50)]
        world2 = FakeWorld()
        assert hops == [net.walk_hops(world2, ("walk", i), 8) for i in range(50)]
        assert all(0 <= h <= 8 for h in hops)
        assert any(h < 8 for h in hops)

    def test_truncated_walk_records_one_drop(self):
        net = UnreliableNetwork(seed=7, loss=0.9)
        world = FakeWorld()
        hops = net.walk_hops(world, ("walk", 0), 8)
        if hops < 8:
            assert world.stats.net_counts["dropped"] == 1


class TestStaleness:
    def test_live_when_staleness_at_most_one(self):
        world = FakeWorld()
        net = UnreliableNetwork(seed=1, staleness=1)
        assert net.neighbor_table(world) == world.neighbor_table()
        assert world.stats.net_counts == {}

    def test_table_served_stale_between_refreshes(self):
        world = FakeWorld(table={1: [2]})
        net = UnreliableNetwork(seed=1, staleness=5)
        assert net.neighbor_table(world) == {1: [2]}
        # The world moves on; the served table does not until the boundary.
        world._table = {1: [2, 3]}
        world.period_index = 4
        assert net.neighbor_table(world) == {1: [2]}
        assert world.stats.net_counts["stale_reads"] == 1
        world.period_index = 5
        assert net.neighbor_table(world) == {1: [2, 3]}

    def test_population_change_forces_refresh(self):
        world = FakeWorld(table={1: [2]})
        net = UnreliableNetwork(seed=1, staleness=10)
        assert net.neighbor_table(world) == {1: [2]}
        world._table = {1: []}
        world.population_version += 1
        assert net.neighbor_table(world) == {1: []}

    def test_stale_rows_slice_the_cached_table(self):
        world = FakeWorld(table={1: [2], 2: [1]})
        net = UnreliableNetwork(seed=1, staleness=5)
        net.neighbor_table(world)
        world._table = {}
        assert net.neighbor_rows(world, [1, 99]) == {1: [2], 99: []}
