"""Tests for message accounting and routing cost models."""

import pytest

from repro.network import (
    BASE_STATION_ID,
    ConnectivityTree,
    Message,
    MessageStats,
    MessageType,
    RoutingCostModel,
)


def chain_tree(depth: int) -> ConnectivityTree:
    tree = ConnectivityTree()
    tree.attach(0, BASE_STATION_ID)
    for i in range(1, depth):
        tree.attach(i, i - 1)
    return tree


class TestMessageStats:
    def test_record_message_cost(self):
        stats = MessageStats()
        stats.record(Message(MessageType.INVITATION, source=1, hops=5))
        assert stats.total() == 5
        assert stats.total_for(MessageType.INVITATION) == 5

    def test_record_transmissions(self):
        stats = MessageStats()
        stats.record_transmissions(MessageType.COVERAGE_QUERY, 7)
        assert stats.total() == 7

    def test_negative_count_rejected(self):
        stats = MessageStats()
        with pytest.raises(ValueError):
            stats.record_transmissions(MessageType.COVERAGE_QUERY, -1)

    def test_average_per_node(self):
        stats = MessageStats()
        stats.record_transmissions(MessageType.INVITATION, 100)
        assert stats.average_per_node(50) == pytest.approx(2.0)
        assert stats.average_per_node(0) == 0.0

    def test_merge_and_reset(self):
        a, b = MessageStats(), MessageStats()
        a.record_transmissions(MessageType.INVITATION, 3)
        b.record_transmissions(MessageType.INVITATION, 4)
        merged = a.merge(b)
        assert merged.total() == 7
        a.reset()
        assert a.total() == 0

    def test_by_type_breakdown(self):
        stats = MessageStats()
        stats.record_transmissions(MessageType.INVITATION, 3)
        stats.record_transmissions(MessageType.ACKNOWLEDGE, 1)
        breakdown = stats.by_type()
        assert breakdown[MessageType.INVITATION] == 3
        assert breakdown[MessageType.ACKNOWLEDGE] == 1


class TestRoutingCosts:
    def test_flood_cost_equals_member_count(self):
        stats = MessageStats()
        routing = RoutingCostModel(stats)
        assert routing.record_flood(25) == 25
        assert stats.total() == 25

    def test_to_base_station_cost_is_depth(self):
        stats = MessageStats()
        routing = RoutingCostModel(stats)
        tree = chain_tree(5)
        assert routing.record_to_base_station(tree, 4, MessageType.ARRIVAL_REPORT) == 5

    def test_tree_unicast_through_common_ancestor(self):
        stats = MessageStats()
        routing = RoutingCostModel(stats)
        tree = ConnectivityTree()
        tree.attach(0, BASE_STATION_ID)
        tree.attach(1, 0)
        tree.attach(2, 0)
        # 1 -> 0 -> 2 is two hops.
        assert routing.record_tree_unicast(tree, 1, 2, MessageType.ACKNOWLEDGE) == 2

    def test_tree_unicast_same_node(self):
        stats = MessageStats()
        routing = RoutingCostModel(stats)
        tree = chain_tree(3)
        assert routing.tree_route_hops(tree, 2, 2) == 0

    def test_random_walk_cost(self):
        stats = MessageStats()
        routing = RoutingCostModel(stats)
        assert routing.record_random_walk(48, MessageType.INVITATION) == 48
        assert stats.total_for(MessageType.INVITATION) == 48

    def test_one_hop_cost(self):
        stats = MessageStats()
        routing = RoutingCostModel(stats)
        routing.record_one_hop(MessageType.NEIGHBOR_STATE, 3)
        assert stats.total_for(MessageType.NEIGHBOR_STATE) == 3

    def test_subtree_lock_cost(self):
        stats = MessageStats()
        routing = RoutingCostModel(stats)
        tree = chain_tree(4)
        cost = routing.record_subtree_lock(tree, 0)
        # Subtree of 0 is the whole chain: 4 nodes, 3 edges, 6 transmissions.
        assert cost == 6
        assert stats.total() == 6
