"""Tests for the connectivity tree."""

import pytest

from repro.network import BASE_STATION_ID, ConnectivityTree


def build_sample_tree() -> ConnectivityTree:
    """base -> 0 -> {1, 2}; 1 -> 3."""
    tree = ConnectivityTree()
    tree.attach(0, BASE_STATION_ID)
    tree.attach(1, 0)
    tree.attach(2, 0)
    tree.attach(3, 1)
    return tree


class TestStructure:
    def test_membership(self):
        tree = build_sample_tree()
        assert 0 in tree and 3 in tree
        assert 99 not in tree
        assert BASE_STATION_ID in tree

    def test_parents_and_children(self):
        tree = build_sample_tree()
        assert tree.parent_of(3) == 1
        assert tree.parent_of(0) == BASE_STATION_ID
        assert tree.children_of(0) == {1, 2}
        assert tree.children_of(3) == set()

    def test_ancestors(self):
        tree = build_sample_tree()
        assert tree.ancestors_of(3) == [1, 0, BASE_STATION_ID]
        assert tree.ancestors_of(0) == [BASE_STATION_ID]

    def test_depth(self):
        tree = build_sample_tree()
        assert tree.depth_of(BASE_STATION_ID) == 0
        assert tree.depth_of(0) == 1
        assert tree.depth_of(3) == 3

    def test_subtree(self):
        tree = build_sample_tree()
        assert tree.subtree_of(0) == {0, 1, 2, 3}
        assert tree.subtree_of(1) == {1, 3}

    def test_is_descendant(self):
        tree = build_sample_tree()
        assert tree.is_descendant(3, 0)
        assert not tree.is_descendant(2, 1)
        assert tree.is_descendant(3, BASE_STATION_ID)

    def test_validate_passes_for_consistent_tree(self):
        build_sample_tree().validate()


class TestMutation:
    def test_attach_requires_known_parent(self):
        tree = ConnectivityTree()
        with pytest.raises(ValueError):
            tree.attach(1, 42)

    def test_attach_rejects_self_parent(self):
        tree = ConnectivityTree()
        with pytest.raises(ValueError):
            tree.attach(1, 1)

    def test_detach_keeps_subtree(self):
        tree = build_sample_tree()
        tree.detach(1, keep_subtree=True)
        assert tree.parent_of(1) is None
        assert 1 not in tree.children_of(0)
        assert tree.children_of(1) == {3}

    def test_detach_removes_subtree(self):
        tree = build_sample_tree()
        tree.detach(1, keep_subtree=False)
        assert tree.parent_of(3) is None
        assert 3 not in tree.children.get(1, set())

    def test_reparent_moves_subtree(self):
        tree = build_sample_tree()
        assert tree.reparent(1, 2)
        assert tree.parent_of(1) == 2
        assert tree.ancestors_of(3) == [1, 2, 0, BASE_STATION_ID]

    def test_reparent_rejects_loop(self):
        tree = build_sample_tree()
        assert not tree.reparent(0, 3)  # 3 is a descendant of 0
        assert tree.parent_of(0) == BASE_STATION_ID

    def test_reparent_to_unknown_parent_fails(self):
        tree = build_sample_tree()
        assert not tree.reparent(1, 77)

    def test_would_create_loop(self):
        tree = build_sample_tree()
        assert tree.would_create_loop(0, 3)
        assert tree.would_create_loop(1, 1)
        assert not tree.would_create_loop(3, 2)
        assert not tree.would_create_loop(1, BASE_STATION_ID)


class TestLockCost:
    def test_leaf_lock_is_free(self):
        tree = build_sample_tree()
        assert tree.lock_subtree_message_count(3) == 0

    def test_internal_node_lock_cost(self):
        tree = build_sample_tree()
        # Subtree of 0 has 4 nodes -> 3 edges -> 6 transmissions.
        assert tree.lock_subtree_message_count(0) == 6
