"""Batched tree-route evaluation vs the scalar chain walk.

:class:`TreeWalkIndex` answers a whole invitation round's tree routes
level-synchronously over flattened parent/depth arrays.  Its contract is
exact agreement with the scalar :meth:`RoutingCostModel.tree_route_hops`
for *every* endpoint kind the protocol produces: tree members, the base
station, ids outside the tree (FLOOR's virtual fixed nodes used as route
endpoints), and members whose ancestor chain passes through a detached
(dead) node.  The end-to-end check drives a full FLOOR run twice —
batched and scalar walks — and requires bit-identical positions and
message counts.
"""

import random

import pytest

from repro.core import FloorScheme
from repro.experiments.common import SMOKE_SCALE, make_config, make_world
from repro.network import BASE_STATION_ID, ConnectivityTree, RoutingCostModel
from repro.network.walks import TreeWalkIndex


def random_tree(rng: random.Random, n: int) -> ConnectivityTree:
    tree = ConnectivityTree()
    attached = []
    for node in range(n):
        parent = (
            BASE_STATION_ID
            if not attached
            else rng.choice(attached + [BASE_STATION_ID])
        )
        tree.attach(node, parent)
        attached.append(node)
    return tree


def scalar_hops(tree, src, dst):
    return RoutingCostModel.tree_route_hops(tree, src, dst)


class TestTreeWalkIndex:
    @pytest.mark.parametrize("trial", range(12))
    def test_route_hops_match_scalar_walk(self, trial):
        rng = random.Random(100 + trial)
        n = rng.randint(1, 60)
        tree = random_tree(rng, n)
        endpoints = list(range(n))
        endpoints += [BASE_STATION_ID]  # the base station itself
        endpoints += [n + 5, 10**6 + trial]  # non-members / virtual ids
        sources = [rng.choice(endpoints) for _ in range(80)]
        dests = [rng.choice(endpoints) for _ in range(80)]
        index = TreeWalkIndex(tree)
        assert not index.degenerate
        got = index.route_hops(sources, dests)
        for k, (src, dst) in enumerate(zip(sources, dests)):
            assert got[k] == scalar_hops(tree, src, dst), (
                f"route {src}->{dst}"
            )

    @pytest.mark.parametrize("trial", range(6))
    def test_detached_ancestor_chains_match(self, trial):
        """A dead mid-chain ancestor truncates the chain identically."""
        rng = random.Random(40 + trial)
        n = rng.randint(10, 40)
        tree = random_tree(rng, n)
        # Detach a few nodes the raw way a failure leaves the structure:
        # the node's own parent entry disappears while its children still
        # point at it (``ancestors_of`` then ends the chain at BASE).
        victims = rng.sample(range(n), 3)
        for v in victims:
            tree.parent.pop(v, None)
        index = TreeWalkIndex(tree)
        survivors = [i for i in range(n) if i not in victims]
        pairs = [
            (rng.choice(survivors), rng.choice(survivors)) for _ in range(40)
        ]
        got = index.route_hops([p[0] for p in pairs], [p[1] for p in pairs])
        for k, (src, dst) in enumerate(pairs):
            assert got[k] == scalar_hops(tree, src, dst)

    def test_depths_match_tree(self):
        tree = random_tree(random.Random(9), 30)
        index = TreeWalkIndex(tree)
        ids = list(range(30)) + [BASE_STATION_ID, 77]
        depths = index.depths(ids)
        for node, depth in zip(ids, depths.tolist()):
            assert depth == tree.depth_of(node)

    def test_identical_endpoints_are_zero_hops(self):
        tree = random_tree(random.Random(1), 10)
        index = TreeWalkIndex(tree)
        hops = index.route_hops([3, BASE_STATION_ID, 50], [3, BASE_STATION_ID, 50])
        assert hops.tolist() == [0, 0, 0]

    def test_huge_id_domain_is_degenerate(self):
        tree = ConnectivityTree()
        tree.attach(0, BASE_STATION_ID)
        tree.attach(10**9, 0)  # a member (not endpoint) with a huge id
        index = TreeWalkIndex(tree)
        assert index.degenerate

    def test_cycle_raises(self):
        tree = ConnectivityTree()
        tree.attach(0, BASE_STATION_ID)
        tree.attach(1, 0)
        tree.parent[0] = 1  # corrupt: 0 <-> 1
        with pytest.raises(RuntimeError, match="cycle"):
            TreeWalkIndex(tree)


class TestFloorBatchedWalks:
    """End-to-end: batched and scalar walks run the same simulation."""

    def _run(self, seed, batch):
        config = make_config(SMOKE_SCALE, sensor_count=40, seed=seed)
        world = make_world(config, SMOKE_SCALE)
        scheme = FloorScheme()
        scheme.initialize(world)
        scheme._invitations.batch_walks = batch
        for period in range(8):
            world.period_index = period
            world.network.on_period(world)
            scheme.step(world)
            world.time += world.config.period
        positions = [
            (s.position.x, s.position.y) for s in world.sensors
        ]
        counts = {
            mt.name: c for mt, c in world.routing.stats.counts.items()
        }
        return positions, counts, world.coverage()

    @pytest.mark.parametrize("seed", [1, 3])
    def test_batched_run_is_bit_identical_to_scalar(self, seed):
        batched = self._run(seed, batch=True)
        scalar = self._run(seed, batch=False)
        assert batched[0] == scalar[0]  # positions, bit-exact
        assert batched[1] == scalar[1]  # per-type message counts
        assert batched[2] == scalar[2]
