"""Tests for MessageStats snapshot/diff window accounting."""

import pytest

from repro.network import MessageStats, MessageType


def test_snapshot_is_a_frozen_copy():
    stats = MessageStats()
    stats.record_transmissions(MessageType.CONNECTIVITY_FLOOD, 3)
    snap = stats.snapshot()
    stats.record_transmissions(MessageType.CONNECTIVITY_FLOOD, 2)
    assert snap.total() == 3
    assert stats.total() == 5
    assert snap.counts is not stats.counts


def test_diff_reports_only_the_window():
    stats = MessageStats()
    stats.record_transmissions(MessageType.CONNECTIVITY_FLOOD, 4)
    snap = stats.snapshot()
    stats.record_transmissions(MessageType.CONNECTIVITY_FLOOD, 1)
    stats.record_transmissions(MessageType.TREE_REPAIR, 7)
    delta = stats.diff(snap)
    assert delta.total_for(MessageType.CONNECTIVITY_FLOOD) == 1
    assert delta.total_for(MessageType.TREE_REPAIR) == 7
    assert delta.total() == 8


def test_diff_drops_zero_entries():
    stats = MessageStats()
    stats.record_transmissions(MessageType.CONNECTIVITY_FLOOD, 4)
    snap = stats.snapshot()
    delta = stats.diff(snap)
    assert delta.total() == 0
    assert MessageType.CONNECTIVITY_FLOOD not in delta.counts


def test_diff_against_later_snapshot_raises():
    stats = MessageStats()
    stats.record_transmissions(MessageType.CONNECTIVITY_FLOOD, 2)
    later = stats.snapshot()
    later.record_transmissions(MessageType.CONNECTIVITY_FLOOD, 5)
    with pytest.raises(ValueError):
        stats.diff(later)


def test_windowed_accounting_composes():
    stats = MessageStats()
    windows = []
    snap = stats.snapshot()
    for burst in (3, 0, 11):
        stats.record_transmissions(MessageType.TREE_REPAIR, burst)
        windows.append(stats.diff(snap).total())
        snap = stats.snapshot()
    assert windows == [3, 0, 11]
    assert stats.total() == 14
