"""Parity tests: indexed point-neighbor queries vs the brute reference."""

import random

import pytest

from repro.field import Field, two_obstacle_field
from repro.geometry import Vec2
from repro.mobility import MotionModel
from repro.network import Radio
from repro.sensors import Sensor

FIELD_SIZE = 300.0


def make_sensors(rng, n, field, rc=40.0):
    sensors = []
    while len(sensors) < n:
        p = Vec2(rng.uniform(0, FIELD_SIZE), rng.uniform(0, FIELD_SIZE))
        if not field.is_free(p):
            continue
        sensors.append(
            Sensor(
                sensor_id=len(sensors),
                motion=MotionModel(position=p, max_speed=2.0, period=1.0),
                communication_range=rc,
                sensing_range=25.0,
            )
        )
    return sensors


@pytest.mark.parametrize("trial", range(8))
@pytest.mark.parametrize("line_of_sight", [False, True])
def test_indexed_point_query_matches_bruteforce(trial, line_of_sight):
    rng = random.Random(1000 + trial)
    field = two_obstacle_field(FIELD_SIZE) if trial % 2 else Field(FIELD_SIZE, FIELD_SIZE)
    radio = Radio(field, line_of_sight=line_of_sight)
    sensors = make_sensors(rng, rng.randint(8, 60), field)
    rc = rng.uniform(20.0, 80.0)
    for _ in range(5):
        point = Vec2(rng.uniform(0, FIELD_SIZE), rng.uniform(0, FIELD_SIZE))
        fast = radio.neighbors_of_point(point, sensors, rc)
        brute = radio.neighbors_of_point_bruteforce(point, sensors, rc)
        assert fast == brute


def test_small_population_uses_brute_path_and_agrees():
    field = Field(FIELD_SIZE, FIELD_SIZE)
    radio = Radio(field)
    rng = random.Random(7)
    sensors = make_sensors(rng, 5, field)  # below the index threshold
    point = Vec2(150.0, 150.0)
    assert radio.neighbors_of_point(
        point, sensors, 100.0
    ) == radio.neighbors_of_point_bruteforce(point, sensors, 100.0)


def test_disabling_spatial_index_forces_brute_path():
    field = Field(FIELD_SIZE, FIELD_SIZE)
    radio = Radio(field)
    radio.use_spatial_index = False
    rng = random.Random(9)
    sensors = make_sensors(rng, 40, field)
    point = Vec2(10.0, 10.0)
    assert radio.neighbors_of_point(
        point, sensors, 120.0
    ) == radio.neighbors_of_point_bruteforce(point, sensors, 120.0)


def test_boundary_distance_is_inclusive_on_both_paths():
    field = Field(FIELD_SIZE, FIELD_SIZE)
    radio = Radio(field)
    sensors = [
        Sensor(
            sensor_id=i,
            motion=MotionModel(
                position=Vec2(10.0 * (i + 1), 0.0), max_speed=2.0, period=1.0
            ),
            communication_range=40.0,
            sensing_range=25.0,
        )
        for i in range(10)
    ]
    point = Vec2(0.0, 0.0)
    # Sensor 3 sits exactly at distance 40; both paths must include it.
    fast = radio.neighbors_of_point(point, sensors, 40.0)
    brute = radio.neighbors_of_point_bruteforce(point, sensors, 40.0)
    assert fast == brute
    assert 3 in fast and 4 not in fast
