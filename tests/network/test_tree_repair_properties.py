"""Property-based tests for tree repair: remove_node / reroot / discard."""

import random

from hypothesis import given, settings, strategies as st

from repro.network import BASE_STATION_ID, ConnectivityTree


def build_random_tree(rng, node_count):
    tree = ConnectivityTree()
    members = []
    for node_id in range(node_count):
        parent = (
            BASE_STATION_ID
            if not members
            else rng.choice(members + [BASE_STATION_ID])
        )
        tree.attach(node_id, parent)
        members.append(node_id)
    return tree, members


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=2, max_value=25),
)
def test_remove_node_returns_exactly_the_orphan_roots(seed, node_count):
    rng = random.Random(seed)
    tree, members = build_random_tree(rng, node_count)
    victim = rng.choice(members)
    expected_orphans = sorted(tree.children_of(victim))
    version_before = tree.version

    orphans = tree.remove_node(victim)

    assert orphans == expected_orphans
    assert tree.version > version_before
    assert victim not in tree
    # Each orphan root is now parentless but keeps its own subtree intact.
    for root in orphans:
        assert tree.parent_of(root) is None
        for member in tree.subtree_of(root):
            if member != root:
                assert tree.parent_of(member) is not None


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=3, max_value=25),
)
def test_remove_then_reattach_restores_a_valid_single_tree(seed, node_count):
    """Kill a node, re-anchor every floating subtree: the invariants hold."""
    rng = random.Random(seed)
    tree, members = build_random_tree(rng, node_count)
    victim = rng.choice(members)
    survivors = [m for m in members if m != victim]

    orphans = tree.remove_node(victim)
    anchored = tree.subtree_of(BASE_STATION_ID)
    for root in orphans:
        floating = sorted(tree.subtree_of(root))
        # Re-anchor through an arbitrary member of the floating subtree —
        # the world picks by link distance; any member is structurally legal.
        new_root = rng.choice(floating)
        anchor = rng.choice(sorted(anchored)) if rng.random() < 0.5 else BASE_STATION_ID
        tree.reroot_floating(root, new_root)
        tree.attach(new_root, anchor)
        anchored.update(floating)

    tree.validate()
    # Single tree: every survivor hangs off the base station again.
    assert set(tree.members()) == set(survivors)
    for node in survivors:
        ancestors = tree.ancestors_of(node)
        assert ancestors[-1] == BASE_STATION_ID
        assert victim not in ancestors
        # Depths consistent with the parent chain (no cycles).
        assert tree.depth_of(node) == len(ancestors)


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=3, max_value=25),
)
def test_reroot_floating_preserves_membership_and_reverses_chain(
    seed, node_count
):
    rng = random.Random(seed)
    tree, members = build_random_tree(rng, node_count)
    victim = rng.choice(members)
    orphans = tree.remove_node(victim)
    for root in orphans:
        floating = tree.subtree_of(root)
        new_root = rng.choice(sorted(floating))
        tree.reroot_floating(root, new_root)
        # Same members, now rooted (parentless) at new_root.
        assert tree.subtree_of(new_root) == floating
        assert tree.parent_of(new_root) is None
        # The old root now reaches new_root by walking up.
        current, seen = root, set()
        while tree.parent_of(current) is not None:
            assert current not in seen, "cycle after reroot"
            seen.add(current)
            current = tree.parent_of(current)
        assert current == new_root


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=2, max_value=25),
)
def test_discard_floating_removes_whole_subtree(seed, node_count):
    rng = random.Random(seed)
    tree, members = build_random_tree(rng, node_count)
    victim = rng.choice(members)
    orphans = tree.remove_node(victim)
    remaining = set(tree.subtree_of(BASE_STATION_ID)) - {BASE_STATION_ID}
    for root in orphans:
        expected = sorted(tree.subtree_of(root))
        version_before = tree.version
        dropped = tree.discard_floating(root)
        assert dropped == expected
        assert tree.version > version_before
        for member in expected:
            assert member not in tree
    tree.validate()
    assert set(tree.members()) == remaining


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=4, max_value=20),
    st.integers(min_value=2, max_value=5),
)
def test_repeated_removals_never_corrupt_the_tree(seed, node_count, kills):
    """Arbitrary kill sequences (discarding all orphans) keep validity."""
    rng = random.Random(seed)
    tree, members = build_random_tree(rng, node_count)
    alive = list(members)
    for _ in range(kills):
        candidates = [m for m in alive if m in tree]
        if not candidates:
            break
        victim = rng.choice(candidates)
        orphans = tree.remove_node(victim)
        alive.remove(victim)
        for root in orphans:
            for member in tree.discard_floating(root):
                if member in alive:
                    alive.remove(member)
        tree.validate()
        assert set(tree.members()) == set(alive) & set(tree.members())
