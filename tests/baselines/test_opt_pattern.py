"""Tests for the OPT strip-based deployment pattern."""

import math

import pytest

from repro.baselines import OptStripPattern
from repro.field import obstacle_free_field, two_obstacle_field
from repro.metrics import positions_are_connected


class TestGeometry:
    def test_spacings_for_large_rc(self):
        pattern = OptStripPattern(obstacle_free_field(1000.0), 120.0, 60.0)
        assert pattern.intra_strip_spacing == pytest.approx(math.sqrt(3) * 60.0)
        assert pattern.inter_strip_spacing == pytest.approx(60.0 + 30.0)

    def test_spacings_for_small_rc(self):
        pattern = OptStripPattern(obstacle_free_field(1000.0), 40.0, 60.0)
        assert pattern.intra_strip_spacing == pytest.approx(40.0)
        expected_inter = 60.0 + math.sqrt(60.0**2 - 400.0)
        assert pattern.inter_strip_spacing == pytest.approx(expected_inter)

    def test_rejects_obstacle_fields(self):
        with pytest.raises(ValueError):
            OptStripPattern(two_obstacle_field(), 60.0, 40.0)

    def test_rejects_invalid_ranges(self):
        with pytest.raises(ValueError):
            OptStripPattern(obstacle_free_field(1000.0), 0.0, 40.0)


class TestPositions:
    def test_positions_inside_field(self):
        pattern = OptStripPattern(obstacle_free_field(500.0), 60.0, 40.0)
        for p in pattern.full_pattern_positions():
            assert 0 <= p.x <= 500
            assert 0 <= p.y <= 500

    def test_positions_for_count_truncates(self):
        pattern = OptStripPattern(obstacle_free_field(500.0), 60.0, 40.0)
        assert len(pattern.positions_for_count(10)) == 10

    def test_positions_for_count_extends(self):
        pattern = OptStripPattern(obstacle_free_field(300.0), 60.0, 40.0)
        needed = pattern.sensors_needed_for_full_coverage()
        positions = pattern.positions_for_count(needed + 5)
        assert len(positions) == needed + 5

    def test_positions_for_count_rejects_negative(self):
        pattern = OptStripPattern(obstacle_free_field(300.0), 60.0, 40.0)
        with pytest.raises(ValueError):
            pattern.positions_for_count(-1)

    def test_full_pattern_achieves_near_full_coverage(self):
        field = obstacle_free_field(500.0)
        pattern = OptStripPattern(field, 60.0, 60.0)
        coverage = pattern.coverage_for_count(
            pattern.sensors_needed_for_full_coverage(), resolution=10.0
        )
        assert coverage >= 0.95

    def test_full_pattern_is_connected(self):
        field = obstacle_free_field(500.0)
        pattern = OptStripPattern(field, 60.0, 60.0)
        positions = pattern.full_pattern_positions()
        assert positions_are_connected(positions, 60.0)

    def test_coverage_monotone_in_count(self):
        field = obstacle_free_field(500.0)
        pattern = OptStripPattern(field, 60.0, 40.0)
        low = pattern.coverage_for_count(20, resolution=20.0)
        high = pattern.coverage_for_count(60, resolution=20.0)
        assert high >= low

    def test_saturated_pattern_keeps_full_coverage(self):
        field = obstacle_free_field(300.0)
        pattern = OptStripPattern(field, 60.0, 60.0)
        needed = pattern.sensors_needed_for_full_coverage()
        assert pattern.coverage_for_count(needed * 2, resolution=15.0) >= 0.95
