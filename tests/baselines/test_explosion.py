"""Tests for the explosion dispersal step."""

import random

import pytest

from repro.assignment import minimum_distance_matching
from repro.baselines import explode
from repro.field import clustered_initial_positions, obstacle_free_field
from repro.geometry import Vec2


class TestExplosion:
    def test_targets_cover_the_field(self):
        field = obstacle_free_field(500.0)
        rng = random.Random(1)
        initial = clustered_initial_positions(40, rng, cluster_size=250.0, field=field)
        result = explode(initial, field, rng)
        assert len(result.positions) == 40
        assert any(p.x > 250 or p.y > 250 for p in result.positions)
        assert all(field.is_free(p) for p in result.positions)

    def test_distance_accounting(self):
        field = obstacle_free_field(500.0)
        rng = random.Random(2)
        initial = clustered_initial_positions(15, rng, cluster_size=250.0, field=field)
        result = explode(initial, field, rng)
        assert result.total_distance == pytest.approx(sum(result.per_sensor_distance))
        assert result.average_distance == pytest.approx(result.total_distance / 15)

    def test_explicit_targets_are_respected(self):
        field = obstacle_free_field(500.0)
        rng = random.Random(3)
        initial = [Vec2(10, 10), Vec2(20, 20)]
        targets = [Vec2(400, 400), Vec2(30, 30)]
        result = explode(initial, field, rng, target_positions=targets)
        assert sorted(p.as_tuple() for p in result.positions) == sorted(
            t.as_tuple() for t in targets
        )

    def test_assignment_is_minimum_cost(self):
        field = obstacle_free_field(500.0)
        rng = random.Random(4)
        initial = [Vec2(0, 0), Vec2(100, 0)]
        targets = [Vec2(110, 0), Vec2(10, 0)]
        result = explode(initial, field, rng, target_positions=targets)
        _, optimal = minimum_distance_matching(
            [p.as_tuple() for p in initial], [t.as_tuple() for t in targets]
        )
        assert result.total_distance == pytest.approx(optimal)

    def test_target_count_mismatch_rejected(self):
        field = obstacle_free_field(500.0)
        with pytest.raises(ValueError):
            explode([Vec2(0, 0)], field, random.Random(0), target_positions=[])
