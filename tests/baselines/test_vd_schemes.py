"""Tests for the VOR and Minimax baselines."""

import random

import pytest

from repro.baselines import MinimaxScheme, VorScheme
from repro.field import obstacle_free_field, uniform_initial_positions
from repro.geometry import Vec2


def random_layout(count, field, seed=1):
    return uniform_initial_positions(count, random.Random(seed), field)


class TestVor:
    def test_rounds_improve_coverage(self):
        field = obstacle_free_field(500.0)
        scheme = VorScheme(field, 200.0, 60.0)
        initial = random_layout(25, field, seed=2)
        before = scheme.coverage(initial, resolution=20.0)
        result = scheme.run(initial, rounds=8)
        after = scheme.coverage(result.final_positions, resolution=20.0)
        assert after >= before

    def test_positions_stay_in_field(self):
        field = obstacle_free_field(500.0)
        scheme = VorScheme(field, 100.0, 60.0)
        result = scheme.run(random_layout(20, field, seed=3), rounds=5)
        for p in result.final_positions:
            assert field.in_bounds(p)

    def test_per_round_move_bounded_by_half_rc(self):
        field = obstacle_free_field(500.0)
        rc = 80.0
        scheme = VorScheme(field, rc, 60.0)
        result = scheme.run(random_layout(15, field, seed=4), rounds=1)
        for distance in result.per_sensor_distance:
            assert distance <= rc / 2.0 + 1e-6

    def test_distance_accounting_matches_displacement_for_one_round(self):
        field = obstacle_free_field(500.0)
        scheme = VorScheme(field, 100.0, 60.0)
        initial = random_layout(10, field, seed=5)
        result = scheme.run(initial, rounds=1)
        for start, end, moved in zip(
            initial, result.final_positions, result.per_sensor_distance
        ):
            assert moved == pytest.approx(start.distance_to(end), abs=1e-6)

    def test_result_aggregates(self):
        field = obstacle_free_field(500.0)
        scheme = VorScheme(field, 100.0, 60.0)
        result = scheme.run(random_layout(10, field, seed=6), rounds=3)
        assert result.total_distance == pytest.approx(sum(result.per_sensor_distance))
        assert result.average_distance == pytest.approx(result.total_distance / 10)
        assert 1 <= result.rounds_executed <= 3


class TestMinimax:
    def test_rounds_improve_coverage(self):
        field = obstacle_free_field(500.0)
        scheme = MinimaxScheme(field, 200.0, 60.0)
        initial = random_layout(25, field, seed=7)
        before = scheme.coverage(initial, resolution=20.0)
        result = scheme.run(initial, rounds=8)
        after = scheme.coverage(result.final_positions, resolution=20.0)
        assert after >= before

    def test_single_sensor_moves_toward_field_center(self):
        field = obstacle_free_field(500.0)
        scheme = MinimaxScheme(field, 1000.0, 60.0)
        result = scheme.run([Vec2(10, 10)], rounds=1)
        # Its cell is the whole field; the minimax point is the centre.
        assert result.final_positions[0].almost_equals(Vec2(250, 250), eps=1.0)

    def test_positions_stay_in_field(self):
        field = obstacle_free_field(500.0)
        scheme = MinimaxScheme(field, 100.0, 60.0)
        result = scheme.run(random_layout(20, field, seed=8), rounds=5)
        for p in result.final_positions:
            assert field.in_bounds(p)


class TestLocalCellEffect:
    def test_small_rc_changes_behaviour(self):
        """With a tiny rc the local Voronoi cells are wrong and coverage is
        lower than with full information (the Fig 10 effect)."""
        field = obstacle_free_field(500.0)
        layout = random_layout(30, field, seed=9)
        blind = VorScheme(field, 30.0, 60.0, use_local_cells=True)
        informed = VorScheme(field, 30.0, 60.0, use_local_cells=False)
        blind_cov = blind.coverage(blind.run(layout, rounds=6).final_positions, 20.0)
        informed_cov = informed.coverage(
            informed.run(layout, rounds=6).final_positions, 20.0
        )
        assert informed_cov >= blind_cov - 0.05
