"""Tests for the evaluation metrics (coverage, distance, CDFs, connectivity)."""

import math

import pytest

from repro.field import Field, Obstacle, obstacle_free_field
from repro.geometry import Vec2
from repro.metrics import (
    DistanceSummary,
    EmpiricalCDF,
    connected_components,
    coverage_fraction,
    coverage_report,
    largest_component_fraction,
    positions_are_connected,
    summarize_distances,
    summarize_sensor_distances,
)
from repro.mobility import MotionModel
from repro.sensors import Sensor


class TestCoverage:
    def test_coverage_fraction_matches_field_method(self):
        field = obstacle_free_field(200.0)
        positions = [Vec2(50, 50), Vec2(150, 150)]
        assert coverage_fraction(field, positions, 40.0, 10.0) == pytest.approx(
            field.coverage_fraction(positions, 40.0, 10.0)
        )

    def test_report_single_disk(self):
        field = obstacle_free_field(200.0)
        report = coverage_report(field, [Vec2(100, 100)], 50.0, 5.0)
        expected = math.pi * 2500 / 40000
        assert report.covered_fraction == pytest.approx(expected, abs=0.02)
        assert report.doubly_covered_fraction == 0.0
        assert report.mean_multiplicity == pytest.approx(1.0)

    def test_report_overlapping_disks(self):
        field = obstacle_free_field(200.0)
        report = coverage_report(field, [Vec2(100, 100), Vec2(110, 100)], 50.0, 5.0)
        assert report.doubly_covered_fraction > 0.0
        assert report.mean_multiplicity > 1.0

    def test_report_empty_layout(self):
        field = obstacle_free_field(200.0)
        report = coverage_report(field, [], 50.0, 10.0)
        assert report.covered_fraction == 0.0

    def test_obstacles_excluded_from_denominator(self):
        field = Field(100.0, 100.0, [Obstacle.rectangle(0, 0, 50, 100)])
        # A sensor covering only the free half yields full coverage.
        assert coverage_fraction(field, [Vec2(75, 50)], 60.0, 2.0) >= 0.95


class TestDistanceSummary:
    def test_empty(self):
        summary = summarize_distances([])
        assert summary == DistanceSummary(0.0, 0.0, 0.0, 0.0, 0)

    def test_statistics(self):
        summary = summarize_distances([1.0, 2.0, 3.0, 10.0])
        assert summary.total == pytest.approx(16.0)
        assert summary.average == pytest.approx(4.0)
        assert summary.median == pytest.approx(2.5)
        assert summary.maximum == pytest.approx(10.0)
        assert summary.count == 4

    def test_sensor_odometers(self):
        sensors = []
        for i, d in enumerate([5.0, 15.0]):
            motion = MotionModel(position=Vec2(0, 0), max_speed=2.0, period=1.0)
            motion.odometer = d
            sensors.append(Sensor(i, motion, 60.0, 40.0))
        summary = summarize_sensor_distances(sensors)
        assert summary.total == pytest.approx(20.0)
        assert summary.average == pytest.approx(10.0)


class TestEmpiricalCDF:
    def test_requires_samples(self):
        with pytest.raises(ValueError):
            EmpiricalCDF([])

    def test_probability_at_most(self):
        cdf = EmpiricalCDF([1.0, 2.0, 3.0, 4.0])
        assert cdf.probability_at_most(0.5) == 0.0
        assert cdf.probability_at_most(2.0) == pytest.approx(0.5)
        assert cdf.probability_at_most(10.0) == 1.0

    def test_quantiles(self):
        cdf = EmpiricalCDF([10, 20, 30, 40, 50])
        assert cdf.quantile(0.0) == 10
        assert cdf.median() == 30
        assert cdf.quantile(1.0) == 50
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_mean(self):
        assert EmpiricalCDF([1, 2, 3]).mean() == pytest.approx(2.0)

    def test_as_points_monotone(self):
        points = EmpiricalCDF([3, 1, 2]).as_points()
        values = [v for v, _ in points]
        probs = [p for _, p in points]
        assert values == sorted(values)
        assert probs[-1] == pytest.approx(1.0)

    def test_series_has_requested_length(self):
        cdf = EmpiricalCDF([1, 5, 9])
        assert len(cdf.series(7)) == 7
        with pytest.raises(ValueError):
            cdf.series(1)

    def test_series_of_constant_sample(self):
        series = EmpiricalCDF([2.0, 2.0]).series(3)
        assert all(prob == 1.0 for _, prob in series)


class TestConnectivityMetrics:
    def test_connected_chain(self):
        positions = [Vec2(0, 0), Vec2(25, 0), Vec2(50, 0)]
        assert positions_are_connected(positions, 30.0)

    def test_disconnected_pair(self):
        positions = [Vec2(0, 0), Vec2(100, 0)]
        assert not positions_are_connected(positions, 30.0)

    def test_base_station_counts_as_node(self):
        positions = [Vec2(25, 0), Vec2(50, 0)]
        assert positions_are_connected(positions, 30.0, base_station=Vec2(0, 0))
        assert not positions_are_connected(positions, 20.0, base_station=Vec2(0, 0))

    def test_components(self):
        positions = [Vec2(0, 0), Vec2(10, 0), Vec2(500, 500)]
        components = connected_components(positions, 30.0)
        sizes = sorted(len(c) for c in components)
        assert sizes == [1, 2]

    def test_largest_component_fraction(self):
        positions = [Vec2(0, 0), Vec2(10, 0), Vec2(500, 500)]
        assert largest_component_fraction(positions, 30.0) == pytest.approx(2 / 3)
        assert largest_component_fraction([], 30.0) == 1.0

    def test_empty_is_connected(self):
        assert positions_are_connected([], 30.0)
