"""Tests for the ASCII layout renderer."""

import pytest

from repro.field import Field, Obstacle
from repro.geometry import Vec2
from repro.viz import render_coverage_bar, render_layout


class TestRenderLayout:
    def test_dimensions(self):
        field = Field(100.0, 100.0)
        art = render_layout(field, [], 10.0, width=40)
        lines = art.splitlines()
        assert all(len(line) == 40 for line in lines)
        assert len(lines) >= 5

    def test_sensor_marker_present(self):
        field = Field(100.0, 100.0)
        art = render_layout(field, [Vec2(50, 50)], 10.0, width=40)
        assert "*" in art
        assert "o" in art

    def test_obstacle_marker_present(self):
        field = Field(100.0, 100.0, [Obstacle.rectangle(40, 40, 60, 60)])
        art = render_layout(field, [], 10.0, width=40)
        assert "#" in art

    def test_base_station_marker(self):
        field = Field(100.0, 100.0)
        art = render_layout(field, [], 10.0, width=40, base_station=Vec2(0, 0))
        # The base station is at the origin, i.e. bottom-left of the picture.
        assert art.splitlines()[-1][0] == "B"

    def test_minimum_width_enforced(self):
        with pytest.raises(ValueError):
            render_layout(Field(100.0, 100.0), [], 10.0, width=5)

    def test_empty_field_is_all_dots(self):
        field = Field(100.0, 100.0)
        art = render_layout(field, [], 10.0, width=20)
        assert set(art.replace("\n", "")) == {"."}


class TestCoverageBar:
    def test_full_bar(self):
        bar = render_coverage_bar("FLOOR", 1.0, width=10)
        assert "==========" in bar
        assert "100.0%" in bar

    def test_empty_bar(self):
        bar = render_coverage_bar("CPVF", 0.0, width=10)
        assert "=" not in bar
        assert "0.0%" in bar

    def test_clamping(self):
        assert "100.0%" in render_coverage_bar("X", 1.5, width=10)
