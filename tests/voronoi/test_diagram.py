"""Tests for the bounded Voronoi diagram."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.field import obstacle_free_field
from repro.geometry import Vec2
from repro.voronoi import VoronoiDiagram, compute_cell, minimum_enclosing_circle


class TestSingleCells:
    def test_lone_site_owns_whole_field(self):
        field = obstacle_free_field(100.0)
        cell = compute_cell(Vec2(50, 50), [], field.boundary_polygon())
        assert cell.polygon.area() == pytest.approx(10000.0)

    def test_two_sites_split_area(self):
        field = obstacle_free_field(100.0)
        bounding = field.boundary_polygon()
        left = compute_cell(Vec2(25, 50), [Vec2(75, 50)], bounding)
        right = compute_cell(Vec2(75, 50), [Vec2(25, 50)], bounding)
        assert left.polygon.area() == pytest.approx(5000.0, rel=1e-6)
        assert right.polygon.area() == pytest.approx(5000.0, rel=1e-6)

    def test_cell_contains_its_site(self):
        field = obstacle_free_field(100.0)
        rng = random.Random(0)
        sites = [Vec2(rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(12)]
        for i, site in enumerate(sites):
            others = [s for j, s in enumerate(sites) if j != i]
            cell = compute_cell(site, others, field.boundary_polygon())
            assert cell.contains(site)

    def test_farthest_vertex(self):
        field = obstacle_free_field(100.0)
        cell = compute_cell(Vec2(10, 10), [], field.boundary_polygon())
        assert cell.farthest_vertex().almost_equals(Vec2(100, 100))
        assert cell.max_vertex_distance() == pytest.approx(Vec2(10, 10).distance_to(Vec2(100, 100)))

    def test_minimax_point_of_square_cell(self):
        field = obstacle_free_field(100.0)
        cell = compute_cell(Vec2(10, 10), [], field.boundary_polygon())
        assert cell.minimax_point().almost_equals(Vec2(50, 50), eps=1e-3)

    def test_empty_cell_handling(self):
        from repro.voronoi.diagram import VoronoiCell

        empty = VoronoiCell(Vec2(0, 0), None)
        assert empty.is_empty()
        assert empty.vertices() == []
        assert empty.farthest_vertex() is None
        assert empty.minimax_point() is None
        assert empty.max_vertex_distance() == 0.0


class TestDiagram:
    def test_cells_partition_field_area(self):
        field = obstacle_free_field(200.0)
        rng = random.Random(1)
        sites = [Vec2(rng.uniform(0, 200), rng.uniform(0, 200)) for _ in range(20)]
        diagram = VoronoiDiagram(sites, field)
        assert diagram.total_cell_area() == pytest.approx(field.area(), rel=1e-3)

    def test_every_cell_contains_only_nearest_points(self):
        field = obstacle_free_field(100.0)
        sites = [Vec2(20, 20), Vec2(80, 20), Vec2(50, 80)]
        diagram = VoronoiDiagram(sites, field)
        rng = random.Random(2)
        for _ in range(50):
            p = Vec2(rng.uniform(0, 100), rng.uniform(0, 100))
            nearest = min(range(3), key=lambda i: p.distance_to(sites[i]))
            # The point must belong to the nearest site's cell (boundary ties allowed).
            assert diagram.cell(nearest).contains(p) or any(
                abs(p.distance_to(sites[nearest]) - p.distance_to(sites[j])) < 1e-6
                for j in range(3)
                if j != nearest
            )

    def test_sites_accessor(self):
        field = obstacle_free_field(100.0)
        sites = [Vec2(10, 10), Vec2(90, 90)]
        assert VoronoiDiagram(sites, field).sites == sites


class TestMinimumEnclosingCircle:
    def test_two_points(self):
        center, radius = minimum_enclosing_circle([Vec2(0, 0), Vec2(10, 0)])
        assert center.almost_equals(Vec2(5, 0))
        assert radius == pytest.approx(5.0)

    def test_equilateral_triangle(self):
        pts = [Vec2(0, 0), Vec2(10, 0), Vec2(5, 8.6602540378)]
        center, radius = minimum_enclosing_circle(pts)
        for p in pts:
            assert center.distance_to(p) == pytest.approx(radius, abs=1e-6)

    def test_empty_input(self):
        center, radius = minimum_enclosing_circle([])
        assert radius == 0.0

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.builds(
                Vec2,
                st.floats(min_value=0, max_value=100),
                st.floats(min_value=0, max_value=100),
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_all_points_enclosed(self, points):
        center, radius = minimum_enclosing_circle(points)
        for p in points:
            assert center.distance_to(p) <= radius + 1e-6
