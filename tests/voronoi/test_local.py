"""Tests for communication-limited (local) Voronoi cells — the Fig 1 effect."""

import random

import pytest

from repro.field import obstacle_free_field
from repro.geometry import Vec2
from repro.voronoi import diagram_is_correct, local_cell, local_cells


class TestLocalCells:
    def test_large_range_reproduces_true_cell(self):
        field = obstacle_free_field(100.0)
        positions = [Vec2(25, 50), Vec2(75, 50), Vec2(50, 90)]
        # A communication range covering everyone yields the true diagram.
        result = diagram_is_correct(positions, 200.0, field)
        assert result.all_correct
        assert result.incorrect_count == 0

    def test_short_range_produces_incorrect_cells(self):
        field = obstacle_free_field(100.0)
        # The middle sensor cannot hear either neighbour, so its local cell
        # is the whole field instead of the true middle slab.
        positions = [Vec2(10, 50), Vec2(50, 50), Vec2(90, 50)]
        result = diagram_is_correct(positions, 20.0, field)
        assert not result.all_correct
        assert result.incorrect_count >= 1

    def test_local_cell_overestimates_with_short_range(self):
        field = obstacle_free_field(100.0)
        positions = [Vec2(10, 50), Vec2(50, 50), Vec2(90, 50)]
        blind = local_cell(1, positions, 20.0, field)
        informed = local_cell(1, positions, 100.0, field)
        assert blind.polygon.area() > informed.polygon.area()

    def test_local_cells_returns_one_per_sensor(self):
        field = obstacle_free_field(100.0)
        positions = [Vec2(20, 20), Vec2(40, 60), Vec2(80, 30)]
        cells = local_cells(positions, 30.0, field)
        assert len(cells) == 3

    def test_incorrect_count_decreases_with_range(self):
        field = obstacle_free_field(200.0)
        rng = random.Random(5)
        positions = [Vec2(rng.uniform(0, 200), rng.uniform(0, 200)) for _ in range(15)]
        incorrect_small = diagram_is_correct(positions, 30.0, field).incorrect_count
        incorrect_large = diagram_is_correct(positions, 400.0, field).incorrect_count
        assert incorrect_large == 0
        assert incorrect_small >= incorrect_large

    def test_single_sensor_is_always_correct(self):
        field = obstacle_free_field(100.0)
        result = diagram_is_correct([Vec2(50, 50)], 1.0, field)
        assert result.all_correct
