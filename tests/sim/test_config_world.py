"""Tests for the simulation configuration and world state."""

import pytest

from repro.field import obstacle_free_field, two_obstacle_field
from repro.geometry import Vec2
from repro.network import BASE_STATION_ID
from repro.sensors import SensorState
from repro.sim import SimulationConfig, World


class TestConfig:
    def test_paper_defaults(self):
        config = SimulationConfig()
        assert config.sensor_count == 240
        assert config.max_speed == pytest.approx(2.0)
        assert config.period == pytest.approx(1.0)
        assert config.duration == pytest.approx(750.0)
        assert config.base_station == Vec2(0.0, 0.0)

    def test_max_periods_and_step(self):
        config = SimulationConfig(duration=100.0, period=2.0, max_speed=3.0)
        assert config.max_periods == 50
        assert config.max_step == pytest.approx(6.0)

    def test_default_invitation_ttl_is_fifth_of_n(self):
        config = SimulationConfig(sensor_count=240)
        assert config.effective_invitation_ttl() == 48

    def test_explicit_invitation_ttl(self):
        config = SimulationConfig(sensor_count=240, invitation_ttl=10)
        assert config.effective_invitation_ttl() == 10

    def test_with_overrides(self):
        config = SimulationConfig().with_overrides(sensor_count=10, seed=9)
        assert config.sensor_count == 10
        assert config.seed == 9
        assert config.duration == pytest.approx(750.0)


class TestWorld:
    def make_world(self, count=12, clustered=True):
        config = SimulationConfig(
            sensor_count=count,
            duration=50.0,
            coverage_resolution=20.0,
            clustered_start=clustered,
            seed=5,
        )
        return World.create(config, obstacle_free_field(400.0))

    def test_creation_places_all_sensors(self):
        world = self.make_world()
        assert len(world.sensors) == 12
        assert all(world.field.is_free(s.position) for s in world.sensors)

    def test_explicit_positions_must_match_count(self):
        config = SimulationConfig(sensor_count=3)
        with pytest.raises(ValueError):
            World.create(config, obstacle_free_field(400.0), initial_positions=[Vec2(1, 1)])

    def test_positions_avoid_obstacles(self):
        config = SimulationConfig(sensor_count=30, seed=2, duration=10.0)
        world = World.create(config, two_obstacle_field(500.0))
        assert all(world.field.is_free(s.position) for s in world.sensors)

    def test_coverage_between_zero_and_one(self):
        world = self.make_world()
        assert 0.0 <= world.coverage() <= 1.0

    def test_moving_distance_starts_at_zero(self):
        world = self.make_world()
        assert world.total_moving_distance() == 0.0
        assert world.average_moving_distance() == 0.0

    def test_attach_and_reparent(self):
        world = self.make_world()
        world.attach_to_tree(0, BASE_STATION_ID)
        world.attach_to_tree(1, 0)
        assert world.sensor(1).parent_id == 0
        assert world.sensor(1).state is SensorState.CONNECTED
        assert 1 in world.sensor(0).children
        assert world.reparent_in_tree(1, BASE_STATION_ID)
        assert world.sensor(1).parent_id == BASE_STATION_ID
        assert 1 not in world.sensor(0).children

    def test_reparent_rejects_loop(self):
        world = self.make_world()
        world.attach_to_tree(0, BASE_STATION_ID)
        world.attach_to_tree(1, 0)
        assert not world.reparent_in_tree(0, 1)

    def test_neighbor_table_and_base_station_neighbors(self):
        world = self.make_world(count=20)
        table = world.neighbor_table()
        assert set(table.keys()) == {s.sensor_id for s in world.sensors}
        near = world.sensors_near_base_station()
        for sid in near:
            assert world.sensor(sid).position.distance_to(world.base_station) <= 60.0 + 1e-9

    def test_connected_sensor_ids_reflect_states(self):
        world = self.make_world()
        assert world.connected_sensor_ids() == []
        world.attach_to_tree(3, BASE_STATION_ID)
        assert world.connected_sensor_ids() == [3]
