"""Engine telemetry threading and the trace_every=None contract."""

from repro.field import obstacle_free_field
from repro.obs import MemorySink, Telemetry
from repro.sim import SimulationConfig, SimulationEngine, World


def _world(duration=20.0, seed=1):
    config = SimulationConfig(
        sensor_count=12, duration=duration, coverage_resolution=25.0, seed=seed
    )
    return World.create(config, obstacle_free_field(300.0))


def _scheme():
    from repro.core import CPVFScheme

    return CPVFScheme(mode="batched")


class TestEngineTelemetry:
    def test_phases_and_counters_recorded(self):
        tel = Telemetry()
        result = SimulationEngine(
            _world(), _scheme(), trace_every=5, telemetry=tel
        ).run()
        summary = result.telemetry
        assert summary is not None
        for phase in ("engine.initialize", "engine.scheme_step", "engine.trace"):
            assert phase in summary.phases, phase
        assert summary.counters["engine.periods"] == result.periods_executed
        assert summary.phases["engine.scheme_step"].calls == result.periods_executed

    def test_period_events_mirror_trace_records(self):
        sink = MemorySink()
        result = SimulationEngine(
            _world(), _scheme(), trace_every=5, telemetry=Telemetry(sink=sink)
        ).run()
        events = sink.of_type("period")
        assert len(events) == len(result.trace)
        for event, record in zip(events, result.trace):
            assert event["coverage"] == record.coverage
            assert event["total_messages"] == record.total_messages

    def test_counters_are_deterministic(self):
        def counters():
            tel = Telemetry()
            SimulationEngine(
                _world(seed=3), _scheme(), trace_every=10, telemetry=tel
            ).run()
            return tel.summary().counters

        assert counters() == counters()

    def test_untraced_result_identical(self):
        # Telemetry must observe, never perturb: coverage/messages match
        # a run without any telemetry installed.
        plain = SimulationEngine(_world(), _scheme(), trace_every=5).run()
        traced = SimulationEngine(
            _world(), _scheme(), trace_every=5, telemetry=Telemetry()
        ).run()
        assert traced.final_coverage == plain.final_coverage
        assert traced.total_messages == plain.total_messages
        assert plain.telemetry is None


class TestTraceEveryNone:
    def test_none_disables_tracing(self):
        result = SimulationEngine(_world(), _scheme(), trace_every=None).run()
        assert result.trace == []
        assert result.telemetry is None

    def test_none_matches_traced_coverage(self):
        untraced = SimulationEngine(_world(), _scheme(), trace_every=None).run()
        traced = SimulationEngine(_world(), _scheme(), trace_every=1).run()
        assert untraced.final_coverage == traced.final_coverage
