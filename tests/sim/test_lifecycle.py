"""Tests for the fault-injection lifecycle subsystem."""

import random

import pytest

from repro.field import Field, Obstacle
from repro.geometry import Vec2
from repro.network import BASE_STATION_ID
from repro.sensors import SensorState
from repro.sim import (
    EVENT_KINDS,
    FaultInjector,
    LifecycleEvent,
    SimulationConfig,
    World,
    normalize_events,
    obstacle_appear,
    obstacle_clear,
    sensor_failure,
    sensor_join,
)

FIELD_SIZE = 200.0


def make_world(n=12, seed=5, rc=60.0, field=None):
    rng = random.Random(seed)
    if field is None:
        field = Field(FIELD_SIZE, FIELD_SIZE)
    config = SimulationConfig(
        sensor_count=n,
        communication_range=rc,
        sensing_range=30.0,
        duration=40.0,
        coverage_resolution=20.0,
        seed=seed,
        clustered_start=False,
    )
    positions = []
    while len(positions) < n:
        p = Vec2(rng.uniform(0, FIELD_SIZE), rng.uniform(0, FIELD_SIZE))
        if field.is_free(p):
            positions.append(p)
    return World.create(config, field, initial_positions=positions)


def attach_chain(world, ids):
    """Attach ``ids`` as a chain hanging off the base station."""
    parent = BASE_STATION_ID
    for sid in ids:
        world.attach_to_tree(sid, parent)
        parent = sid


class TestEventConstruction:
    def test_kinds_are_closed(self):
        assert set(EVENT_KINDS) == {
            "failure",
            "join",
            "obstacle",
            "clear-obstacle",
        }
        with pytest.raises(ValueError):
            LifecycleEvent(at_period=1, kind="meteor")

    def test_failure_requires_exactly_one_of_count_fraction(self):
        with pytest.raises(ValueError):
            sensor_failure(at_period=1)
        with pytest.raises(ValueError):
            sensor_failure(at_period=1, count=2, fraction=0.5)
        with pytest.raises(ValueError):
            sensor_failure(at_period=1, count=2, selection="loudest")

    def test_join_staging_point_validation(self):
        with pytest.raises(ValueError):
            sensor_join(at_period=1, count=2, x=10.0)
        with pytest.raises(ValueError):
            sensor_join(at_period=1, count=2, radius=5.0)

    def test_obstacle_rectangle_must_not_degenerate(self):
        with pytest.raises(ValueError):
            obstacle_appear(at_period=1, xmin=10, ymin=10, xmax=10, ymax=20)

    def test_negative_period_rejected(self):
        with pytest.raises(ValueError):
            sensor_failure(at_period=-1, count=1)

    def test_serialization_round_trip(self):
        events = (
            sensor_failure(at_period=3, fraction=0.25, selection="interior"),
            sensor_join(at_period=7, count=4, x=1.0, y=2.0, radius=30.0),
            obstacle_appear(at_period=9, xmin=0, ymin=0, xmax=5, ymax=5),
            obstacle_clear(at_period=11, index=0),
        )
        for event in events:
            assert LifecycleEvent.from_dict(event.to_dict()) == event

    def test_normalize_events_accepts_dicts_and_sorts_nothing(self):
        raw = [
            sensor_failure(at_period=5, count=1).to_dict(),
            sensor_join(at_period=2, count=1),
        ]
        events = normalize_events(raw)
        assert all(isinstance(e, LifecycleEvent) for e in events)
        # Declaration order is preserved; firing order is the injector's job.
        assert [e.at_period for e in events] == [5, 2]


class TestWorldChurn:
    def test_remove_sensor_keeps_slot_and_ids(self):
        world = make_world()
        n = len(world.sensors)
        world.remove_sensor(4)
        assert len(world.sensors) == n
        assert world.sensor(4).state is SensorState.FAILED
        assert not world.sensor(4).is_alive()
        assert [s.sensor_id for s in world.sensors] == list(range(n))
        assert len(world.alive_sensors()) == n - 1
        assert world.alive_count() == n - 1

    def test_remove_sensor_is_idempotent(self):
        world = make_world()
        world.remove_sensor(2)
        version = world.population_version
        assert world.remove_sensor(2) == []
        assert world.population_version == version

    def test_alive_sensors_identity_when_population_intact(self):
        world = make_world()
        assert world.alive_sensors() is world.sensors

    def test_add_sensor_appends_with_next_id(self):
        world = make_world()
        n = len(world.sensors)
        sensor = world.add_sensor(Vec2(50.0, 50.0))
        assert sensor.sensor_id == n
        assert world.sensor(n) is sensor
        assert sensor.state is SensorState.DISCONNECTED

    def test_population_version_bumps(self):
        world = make_world()
        v0 = world.population_version
        world.remove_sensor(0)
        v1 = world.population_version
        world.add_sensor(Vec2(10.0, 10.0))
        v2 = world.population_version
        assert v0 < v1 < v2

    def test_dead_sensors_leave_neighbor_structures(self):
        world = make_world(n=8, rc=500.0)
        assert 3 in world.neighbor_table()[5]
        world.remove_sensor(3)
        table = world.neighbor_table()
        assert 3 not in table
        assert all(3 not in row for row in table.values())
        rows = world.neighbor_rows([3, 5])
        assert rows[3] == []
        assert 3 not in rows[5]

    def test_coverage_ignores_dead_sensors(self):
        world = make_world(n=6)
        full = world.coverage()
        for sid in range(5):
            world.remove_sensor(sid)
        assert world.coverage() < full


class TestTreeRepairInWorld:
    def test_leaf_death_prunes_cleanly(self):
        world = make_world(n=6, rc=500.0)
        attach_chain(world, [0, 1, 2])
        disconnected = world.remove_sensor(2)
        assert disconnected == []
        world.tree.validate()
        assert 2 not in world.tree
        assert world.tree.children_of(1) == set()
        assert 2 not in world.sensor(1).children

    def test_interior_death_reattaches_subtree(self):
        # Everyone is in range of everyone (rc=500), so the orphaned chain
        # tail must be re-attached, not dropped.
        world = make_world(n=6, rc=500.0)
        attach_chain(world, [0, 1, 2, 3])
        disconnected = world.remove_sensor(1)
        assert disconnected == []
        world.tree.validate()
        for sid in (0, 2, 3):
            assert sid in world.tree
            assert world.sensor(sid).is_connected()

    def test_unreachable_subtree_goes_disconnected(self):
        # rc so small nothing is in range of anything: killing the chain's
        # root strands its descendants (the chain itself was attached
        # artificially, which the repair cannot re-create).
        world = make_world(n=6, rc=1.0)
        attach_chain(world, [0, 1, 2])
        disconnected = world.remove_sensor(0)
        assert set(disconnected) == {1, 2}
        world.tree.validate()
        for sid in (1, 2):
            assert sid not in world.tree
            assert world.sensor(sid).state is SensorState.DISCONNECTED
            assert world.sensor(sid).parent_id is None

    def test_repair_records_messages(self):
        world = make_world(n=6, rc=500.0)
        attach_chain(world, [0, 1, 2, 3])
        before = world.stats.total()
        world.remove_sensor(1)
        assert world.stats.total() > before


class TestFieldEvents:
    def test_obstacle_appear_and_clear_round_trip(self):
        field = Field(FIELD_SIZE, FIELD_SIZE)
        world = make_world(field=field)
        v0 = field.version
        index = field.add_obstacle(Obstacle.rectangle(10, 10, 60, 60))
        assert index == 0
        assert not field.is_free(Vec2(30, 30))
        assert field.version > v0
        removed = field.remove_obstacle(0)
        assert field.is_free(Vec2(30, 30))
        assert removed.contains(Vec2(30, 30))
        world.notify_field_changed()

    def test_injector_displaces_swallowed_sensors(self):
        field = Field(FIELD_SIZE, FIELD_SIZE)
        world = make_world(n=8, field=field)
        event = obstacle_appear(at_period=0, xmin=0, ymin=0, xmax=150, ymax=150)
        injector = FaultInjector(world, _RecordingScheme(), [event])
        injector.fire(0)
        for sensor in world.alive_sensors():
            assert field.is_free(sensor.position)

    def test_clear_obstacle_index_out_of_range_raises(self):
        world = make_world()
        injector = FaultInjector(
            world, _RecordingScheme(), [obstacle_clear(at_period=0, index=3)]
        )
        with pytest.raises(ValueError):
            injector.fire(0)


class _RecordingScheme:
    """Minimal scheme double capturing on_world_changed calls."""

    name = "recorder"

    def __init__(self):
        self.changes = []

    def initialize(self, world):
        pass

    def step(self, world):
        pass

    def on_world_changed(self, world, change):
        self.changes.append(change)


class TestFaultInjector:
    def test_fires_at_declared_periods_only(self):
        world = make_world()
        scheme = _RecordingScheme()
        events = [
            sensor_failure(at_period=2, count=1),
            sensor_failure(at_period=5, count=1),
        ]
        injector = FaultInjector(world, scheme, events)
        fired = [injector.fire(p) for p in range(7)]
        assert fired == [0, 0, 1, 0, 0, 1, 0]
        assert len(scheme.changes) == 2
        assert all(change.kind == "failure" for change in scheme.changes)

    def test_has_pending_reflects_last_event(self):
        world = make_world()
        injector = FaultInjector(
            world, _RecordingScheme(), [sensor_failure(at_period=4, count=1)]
        )
        assert injector.has_pending(0)
        assert injector.has_pending(3)
        assert not injector.has_pending(4)

    def test_victim_selection_is_seed_deterministic(self):
        events = [sensor_failure(at_period=0, fraction=0.3)]
        victims = []
        for _ in range(2):
            world = make_world(seed=11)
            scheme = _RecordingScheme()
            FaultInjector(world, scheme, events).fire(0)
            victims.append(scheme.changes[0].failed_ids)
        assert victims[0] == victims[1]
        assert len(victims[0]) == round(0.3 * 12)

    def test_different_seeds_usually_differ(self):
        events = [sensor_failure(at_period=0, fraction=0.5)]
        draws = set()
        for seed in range(6):
            world = make_world(seed=seed)
            scheme = _RecordingScheme()
            FaultInjector(world, scheme, events).fire(0)
            draws.add(scheme.changes[0].failed_ids)
        assert len(draws) > 1

    def test_join_event_adds_alive_free_space_sensors(self):
        world = make_world(n=6)
        scheme = _RecordingScheme()
        injector = FaultInjector(
            world,
            scheme,
            [sensor_join(at_period=0, count=3, x=50.0, y=50.0, radius=40.0)],
        )
        injector.fire(0)
        assert len(world.sensors) == 9
        assert scheme.changes[0].added_ids == (6, 7, 8)
        for sid in (6, 7, 8):
            sensor = world.sensor(sid)
            assert sensor.is_alive()
            assert world.field.is_free(sensor.position)
            assert sensor.position.distance_to(Vec2(50.0, 50.0)) <= 40.0 + 1e-9

    def test_outcomes_one_per_event_in_period_order(self):
        world = make_world(n=10, rc=500.0)
        attach_chain(world, list(range(10)))
        scheme = _RecordingScheme()
        events = [
            sensor_failure(at_period=4, count=2),
            sensor_failure(at_period=1, count=1),
        ]
        injector = FaultInjector(world, scheme, events)
        for period in range(8):
            injector.fire(period)
            injector.observe(period)
        outcomes = injector.outcomes()
        assert [o.at_period for o in outcomes] == [1, 4]
        assert all(o.kind == "failure" for o in outcomes)
        assert all(0.0 <= o.pre_coverage <= 1.0 for o in outcomes)
