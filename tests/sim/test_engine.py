"""Tests for the period-synchronous simulation engine."""

import pytest

from repro.field import obstacle_free_field
from repro.geometry import Vec2
from repro.sim import DeploymentScheme, SimulationConfig, SimulationEngine, World


class RecordingScheme(DeploymentScheme):
    """Moves every sensor 1 m to the right each period; converges after N steps."""

    name = "recording"

    def __init__(self, converge_after=None):
        self.initialized = False
        self.steps = 0
        self.converge_after = converge_after

    def initialize(self, world: World) -> None:
        self.initialized = True

    def step(self, world: World) -> None:
        self.steps += 1
        for sensor in world.sensors:
            sensor.motion.move_to(sensor.position + Vec2(1.0, 0.0))

    def has_converged(self, world: World) -> bool:
        return self.converge_after is not None and self.steps >= self.converge_after


def make_world(duration=20.0):
    config = SimulationConfig(
        sensor_count=5, duration=duration, coverage_resolution=25.0, seed=1
    )
    return World.create(config, obstacle_free_field(300.0))


class TestEngine:
    def test_runs_all_periods(self):
        scheme = RecordingScheme()
        result = SimulationEngine(make_world(duration=20.0), scheme).run()
        assert scheme.initialized
        assert scheme.steps == 20
        assert result.periods_executed == 20
        assert result.converged_at is None

    def test_stops_on_convergence(self):
        scheme = RecordingScheme(converge_after=7)
        result = SimulationEngine(make_world(duration=50.0), scheme).run()
        assert result.converged_at == 7
        assert result.periods_executed == 7

    def test_convergence_not_stopping_when_disabled(self):
        scheme = RecordingScheme(converge_after=7)
        engine = SimulationEngine(make_world(duration=30.0), scheme, stop_on_convergence=False)
        result = engine.run()
        assert result.converged_at == 7
        assert result.periods_executed == 30

    def test_trace_records_are_collected(self):
        scheme = RecordingScheme()
        result = SimulationEngine(make_world(duration=20.0), scheme, trace_every=5).run()
        assert len(result.trace) >= 4
        times = [record.time for record in result.trace]
        assert times == sorted(times)

    def test_moving_distance_accumulates(self):
        scheme = RecordingScheme()
        result = SimulationEngine(make_world(duration=10.0), scheme).run()
        assert result.average_moving_distance == pytest.approx(10.0)
        assert result.total_moving_distance == pytest.approx(50.0)

    def test_world_reference_retained(self):
        scheme = RecordingScheme()
        result = SimulationEngine(make_world(duration=5.0), scheme, keep_world=True).run()
        assert result.world is not None
        assert result.messages_per_node() == pytest.approx(0.0)

    def test_world_reference_dropped_when_requested(self):
        scheme = RecordingScheme()
        result = SimulationEngine(make_world(duration=5.0), scheme, keep_world=False).run()
        assert result.world is None
        assert result.messages_per_node() == 0.0
