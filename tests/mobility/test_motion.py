"""Tests for the step-based motion model."""

import pytest

from repro.field import Field
from repro.geometry import Vec2
from repro.mobility import Bug2Planner, MotionModel


def make_model(x=0.0, y=0.0, speed=2.0, period=1.0) -> MotionModel:
    return MotionModel(position=Vec2(x, y), max_speed=speed, period=period)


class TestDirectMoves:
    def test_max_step(self):
        assert make_model(speed=2.0, period=1.0).max_step == pytest.approx(2.0)
        assert make_model(speed=3.0, period=2.0).max_step == pytest.approx(6.0)

    def test_move_to_charges_odometer(self):
        model = make_model()
        moved = model.move_to(Vec2(3, 4))
        assert moved == pytest.approx(5.0)
        assert model.odometer == pytest.approx(5.0)
        assert model.position == Vec2(3, 4)

    def test_step_towards_respects_max_step(self):
        model = make_model()
        moved = model.step_towards(Vec2(100, 0))
        assert moved == pytest.approx(2.0)
        assert model.position.almost_equals(Vec2(2, 0))

    def test_step_towards_stops_at_target(self):
        model = make_model()
        moved = model.step_towards(Vec2(1, 0))
        assert moved == pytest.approx(1.0)
        assert model.position.almost_equals(Vec2(1, 0))

    def test_step_towards_with_cap(self):
        model = make_model()
        moved = model.step_towards(Vec2(100, 0), distance=0.5)
        assert moved == pytest.approx(0.5)

    def test_step_towards_zero_distance(self):
        model = make_model()
        assert model.step_towards(Vec2(100, 0), distance=0.0) == 0.0
        assert model.odometer == 0.0


class TestPathFollowing:
    def setup_method(self):
        self.field = Field(1000.0, 1000.0)
        self.planner = Bug2Planner(self.field)

    def test_follow_and_advance(self):
        model = make_model(0, 0)
        path = self.planner.plan(Vec2(0, 0), Vec2(10, 0))
        model.follow(path)
        assert model.has_path
        total = 0.0
        for _ in range(10):
            total += model.advance_along_path()
        assert total == pytest.approx(10.0)
        assert model.position.almost_equals(Vec2(10, 0))
        assert not model.has_path

    def test_advance_without_path(self):
        model = make_model()
        assert model.advance_along_path() == 0.0

    def test_remaining_path_length_decreases(self):
        model = make_model(0, 0)
        model.follow(self.planner.plan(Vec2(0, 0), Vec2(20, 0)))
        before = model.remaining_path_length()
        model.advance_along_path()
        assert model.remaining_path_length() == pytest.approx(before - 2.0)

    def test_stop_abandons_path(self):
        model = make_model(0, 0)
        model.follow(self.planner.plan(Vec2(0, 0), Vec2(20, 0)))
        model.stop()
        assert not model.has_path
        assert model.advance_along_path() == 0.0

    def test_follow_snaps_to_path_start(self):
        model = make_model(5, 5)
        model.follow(self.planner.plan(Vec2(0, 0), Vec2(10, 0)))
        assert model.position.almost_equals(Vec2(0, 0))

    def test_odometer_accumulates_along_path(self):
        model = make_model(0, 0)
        model.follow(self.planner.plan(Vec2(0, 0), Vec2(7, 0)))
        while model.has_path:
            model.advance_along_path()
        assert model.odometer == pytest.approx(7.0)

    def test_advance_with_cap(self):
        model = make_model(0, 0)
        model.follow(self.planner.plan(Vec2(0, 0), Vec2(10, 0)))
        assert model.advance_along_path(distance=0.5) == pytest.approx(0.5)
