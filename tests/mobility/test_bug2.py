"""Tests for the BUG2 path planner."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.field import Field, Obstacle, two_obstacle_field
from repro.geometry import Segment, Vec2
from repro.mobility import Bug2Planner, Handedness


@pytest.fixture
def empty_field() -> Field:
    return Field(1000.0, 1000.0)


@pytest.fixture
def field_with_block() -> Field:
    return Field(1000.0, 1000.0, [Obstacle.rectangle(400, 400, 600, 600)])


class TestStraightLine:
    def test_unobstructed_path_is_straight(self, empty_field):
        planner = Bug2Planner(empty_field)
        path = planner.plan(Vec2(100, 100), Vec2(900, 900))
        assert path.reached_target
        assert path.encounters == 0
        assert path.length() == pytest.approx(Vec2(100, 100).distance_to(Vec2(900, 900)))

    def test_zero_length_path(self, empty_field):
        planner = Bug2Planner(empty_field)
        path = planner.plan(Vec2(100, 100), Vec2(100, 100))
        assert path.reached_target
        assert path.length() == pytest.approx(0.0)

    def test_path_point_at_distance(self, empty_field):
        planner = Bug2Planner(empty_field)
        path = planner.plan(Vec2(0, 0), Vec2(100, 0))
        assert path.point_at_distance(25).almost_equals(Vec2(25, 0))
        assert path.point_at_distance(1e9).almost_equals(Vec2(100, 0))
        assert path.point_at_distance(-5).almost_equals(Vec2(0, 0))


class TestObstacleAvoidance:
    def test_path_goes_around_obstacle(self, field_with_block):
        planner = Bug2Planner(field_with_block)
        path = planner.plan(Vec2(100, 500), Vec2(900, 500))
        assert path.reached_target
        assert path.encounters >= 1
        # The path must be longer than the straight line but bounded by BUG2's
        # worst case D + n*l/2.
        direct = Vec2(100, 500).distance_to(Vec2(900, 500))
        assert path.length() > direct
        assert path.length() <= planner.path_length_upper_bound(
            Vec2(100, 500), Vec2(900, 500)
        ) + 10.0

    def test_waypoints_stay_in_free_space(self, field_with_block):
        planner = Bug2Planner(field_with_block)
        path = planner.plan(Vec2(100, 500), Vec2(900, 500))
        for waypoint in path.waypoints:
            assert field_with_block.is_free(waypoint)

    def test_path_segments_do_not_cross_obstacles(self, field_with_block):
        planner = Bug2Planner(field_with_block)
        path = planner.plan(Vec2(100, 450), Vec2(900, 550))
        for a, b in zip(path.waypoints, path.waypoints[1:]):
            assert not field_with_block.segment_blocked(Segment(a, b))

    def test_left_and_right_hand_rules_detour_to_different_sides(self, field_with_block):
        right = Bug2Planner(field_with_block, Handedness.RIGHT)
        left = Bug2Planner(field_with_block, Handedness.LEFT)
        start, target = Vec2(100, 500), Vec2(900, 500)
        right_path = right.plan(start, target)
        left_path = left.plan(start, target)
        assert right_path.reached_target and left_path.reached_target
        right_ys = [p.y for p in right_path.waypoints[1:-1]]
        left_ys = [p.y for p in left_path.waypoints[1:-1]]
        if right_ys and left_ys:
            assert (max(right_ys) > 600) != (max(left_ys) > 600)

    def test_two_obstacle_canonical_field(self):
        field = two_obstacle_field()
        planner = Bug2Planner(field)
        # From inside the cluster quadrant past both obstacles.
        path = planner.plan(Vec2(300, 300), Vec2(900, 900))
        assert path.reached_target
        for a, b in zip(path.waypoints, path.waypoints[1:]):
            assert not field.segment_blocked(Segment(a, b))

    def test_start_inside_obstacle_is_projected_out(self, field_with_block):
        planner = Bug2Planner(field_with_block)
        path = planner.plan(Vec2(500, 500), Vec2(100, 100))
        assert field_with_block.is_free(path.start())
        assert path.reached_target


class TestRandomizedCourses:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_random_rectangles_are_circumnavigated(self, seed):
        rng = random.Random(seed)
        # One random rectangular obstacle strictly inside the field.
        x0 = rng.uniform(200, 600)
        y0 = rng.uniform(200, 600)
        w = rng.uniform(50, 250)
        h = rng.uniform(50, 250)
        field = Field(1000.0, 1000.0, [Obstacle.rectangle(x0, y0, x0 + w, y0 + h)])
        planner = Bug2Planner(field)
        start = Vec2(50, 50)
        target = Vec2(950, 950)
        path = planner.plan(start, target)
        assert path.reached_target
        assert path.length() <= planner.path_length_upper_bound(start, target) + 10.0
        for a, b in zip(path.waypoints, path.waypoints[1:]):
            assert not field.segment_blocked(Segment(a, b))
