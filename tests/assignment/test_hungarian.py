"""Tests for the from-scratch Hungarian algorithm."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.optimize import linear_sum_assignment

from repro.assignment import assignment_cost, hungarian, minimum_distance_matching


class TestSmallCases:
    def test_identity_matrix(self):
        cost = [[0, 1, 1], [1, 0, 1], [1, 1, 0]]
        assert hungarian(cost) == [0, 1, 2]

    def test_anti_diagonal(self):
        cost = [[10, 10, 0], [10, 0, 10], [0, 10, 10]]
        assert hungarian(cost) == [2, 1, 0]

    def test_classic_example(self):
        cost = [[4, 1, 3], [2, 0, 5], [3, 2, 2]]
        assignment = hungarian(cost)
        assert assignment_cost(cost, assignment) == pytest.approx(5.0)

    def test_rectangular_matrix(self):
        cost = [[1, 2, 3], [3, 1, 2]]
        assignment = hungarian(cost)
        assert len(assignment) == 2
        assert len(set(assignment)) == 2
        assert assignment_cost(cost, assignment) == pytest.approx(2.0)

    def test_single_element(self):
        assert hungarian([[5.0]]) == [0]

    def test_empty_matrix(self):
        assert hungarian(np.empty((0, 0))) == []

    def test_more_rows_than_cols_rejected(self):
        with pytest.raises(ValueError):
            hungarian([[1, 2], [3, 4], [5, 6]])

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            hungarian([[1.0, float("inf")], [2.0, 3.0]])


class TestAgainstScipy:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_matches_scipy_optimal_cost(self, n, extra_cols, seed):
        rng = np.random.default_rng(seed)
        cost = rng.uniform(0, 100, size=(n, n + extra_cols))
        ours = hungarian(cost)
        rows, cols = linear_sum_assignment(cost)
        ours_cost = assignment_cost(cost, ours)
        scipy_cost = float(cost[rows, cols].sum())
        assert ours_cost == pytest.approx(scipy_cost, rel=1e-9, abs=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=10), st.integers(min_value=0, max_value=10_000))
    def test_assignment_is_a_valid_matching(self, n, seed):
        rng = np.random.default_rng(seed)
        cost = rng.uniform(0, 100, size=(n, n))
        assignment = hungarian(cost)
        assert sorted(assignment) == sorted(set(assignment))
        assert all(0 <= j < n for j in assignment)


class TestDistanceMatching:
    def test_matches_identical_point_sets_with_zero_cost(self):
        points = [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)]
        assignment, total = minimum_distance_matching(points, points)
        assert total == pytest.approx(0.0)
        assert sorted(assignment) == [0, 1, 2]

    def test_simple_swap_is_cheaper(self):
        sources = [(0.0, 0.0), (10.0, 0.0)]
        targets = [(10.0, 0.0), (0.0, 0.0)]
        assignment, total = minimum_distance_matching(sources, targets)
        assert assignment == [1, 0]
        assert total == pytest.approx(0.0)

    def test_requires_enough_targets(self):
        with pytest.raises(ValueError):
            minimum_distance_matching([(0, 0), (1, 1)], [(0, 0)])

    def test_empty_input(self):
        assignment, total = minimum_distance_matching([], [])
        assert assignment == []
        assert total == 0.0

    def test_total_is_minimal_for_small_instance(self):
        sources = [(0.0, 0.0), (5.0, 0.0)]
        targets = [(1.0, 0.0), (100.0, 0.0)]
        _, total = minimum_distance_matching(sources, targets)
        # Best: 0->1 (1m), 5->100 (95m) = 96; the alternative is 100 + 4 = 104.
        assert total == pytest.approx(96.0)
