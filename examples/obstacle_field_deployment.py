#!/usr/bin/env python3
"""Obstacle-adaptive deployment: CPVF vs FLOOR in the two-obstacle field.

This example reproduces the qualitative story of Figures 3(c) and 8(c) of
the paper at a reduced scale: in a field whose initial cluster quadrant is
walled off by two rectangular obstacles, the virtual-force scheme (CPVF)
struggles to push sensors through the exits, while FLOOR grows coverage
around the obstacles along floor lines and boundaries.

Run with::

    python examples/obstacle_field_deployment.py
"""

from __future__ import annotations

from repro import (
    CPVFScheme,
    FloorScheme,
    SimulationConfig,
    SimulationEngine,
    World,
    two_obstacle_field,
)
from repro.viz import render_coverage_bar, render_layout

FIELD_SIZE = 600.0


def run_scheme(scheme, seed: int = 3):
    """Run one scheme on the canonical two-obstacle field."""
    config = SimulationConfig(
        sensor_count=80,
        communication_range=60.0,
        sensing_range=40.0,
        duration=400.0,
        coverage_resolution=12.0,
        seed=seed,
    )
    field = two_obstacle_field(FIELD_SIZE)
    world = World.create(config, field)
    result = SimulationEngine(world, scheme, trace_every=100).run()
    return result, world


def main() -> None:
    print(f"two-obstacle field, {FIELD_SIZE:.0f} x {FIELD_SIZE:.0f} m, 80 sensors\n")
    results = {}
    for scheme in (CPVFScheme(), FloorScheme()):
        result, world = run_scheme(scheme)
        results[scheme.name] = (result, world)
        print(f"{scheme.name}:")
        print(f"  coverage             : {result.final_coverage:.1%}")
        print(f"  avg moving distance  : {result.average_moving_distance:.1f} m")
        print(f"  protocol messages    : {result.total_messages}")
        print(f"  connected at the end : {result.connected}")
        print()

    print("coverage comparison:")
    for name, (result, _) in results.items():
        print(render_coverage_bar(name, result.final_coverage))

    for name, (_, world) in results.items():
        print()
        print(f"{name} final layout ('#' obstacle, '*' sensor, 'o' covered):")
        print(
            render_layout(
                world.field,
                world.positions(),
                world.config.sensing_range,
                width=60,
                base_station=world.base_station,
            )
        )

    floor_cov = results["FLOOR"][0].final_coverage
    cpvf_cov = results["CPVF"][0].final_coverage
    print()
    if floor_cov > cpvf_cov:
        print(
            f"FLOOR covered {floor_cov - cpvf_cov:+.1%} more of the field than CPVF, "
            "matching the paper's obstacle-adaptivity claim."
        )
    else:
        print(
            "At this reduced scale CPVF kept up with FLOOR; at the paper's full "
            "scale (1000 m field, 240 sensors) the gap widens to ~2x."
        )


if __name__ == "__main__":
    main()
