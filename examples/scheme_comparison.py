#!/usr/bin/env python3
"""Compare all deployment schemes: CPVF, FLOOR, VOR, Minimax and OPT.

The comparison mirrors the structure of the paper's Section 6 evaluation on
a reduced scale: every scheme starts from the same clustered distribution,
and we report coverage, connectivity and average moving distance, plus the
Hungarian-matching lower bounds the paper uses as yardsticks (Fig 11).

Run with::

    python examples/scheme_comparison.py [--rc 60] [--rs 40] [--sensors 70]
"""

from __future__ import annotations

import argparse
import random

from repro import (
    CPVFScheme,
    FloorScheme,
    MinimaxScheme,
    OptStripPattern,
    SimulationConfig,
    SimulationEngine,
    VorScheme,
    World,
    explode,
    minimum_distance_matching,
    obstacle_free_field,
    positions_are_connected,
)
from repro.field import clustered_initial_positions
from repro.viz import render_coverage_bar

FIELD_SIZE = 500.0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rc", type=float, default=60.0, help="communication range (m)")
    parser.add_argument("--rs", type=float, default=40.0, help="sensing range (m)")
    parser.add_argument("--sensors", type=int, default=70, help="number of sensors")
    parser.add_argument("--seed", type=int, default=5, help="random seed")
    args = parser.parse_args()

    field = obstacle_free_field(FIELD_SIZE)
    rng = random.Random(args.seed)
    initial = clustered_initial_positions(
        args.sensors, rng, cluster_size=FIELD_SIZE / 2.0, field=field
    )
    initial_tuples = [p.as_tuple() for p in initial]
    rows = []

    # --- period-based schemes: CPVF and FLOOR -------------------------
    for scheme in (CPVFScheme(), FloorScheme()):
        config = SimulationConfig(
            sensor_count=args.sensors,
            communication_range=args.rc,
            sensing_range=args.rs,
            duration=300.0,
            coverage_resolution=10.0,
            seed=args.seed,
        )
        world = World.create(config, field, initial_positions=list(initial))
        result = SimulationEngine(world, scheme).run()
        rows.append(
            (scheme.name, result.final_coverage, result.connected, result.average_moving_distance)
        )

    # --- round-based VD schemes: explosion + VOR / Minimax ------------
    exploded = explode(initial, field, random.Random(args.seed))
    for scheme in (VorScheme(field, args.rc, args.rs), MinimaxScheme(field, args.rc, args.rs)):
        vd_result = scheme.run(exploded.positions, rounds=10)
        per_sensor = [
            a + b
            for a, b in zip(exploded.per_sensor_distance, vd_result.per_sensor_distance)
        ]
        rows.append(
            (
                scheme.name,
                scheme.coverage(vd_result.final_positions, resolution=10.0),
                positions_are_connected(vd_result.final_positions, args.rc),
                sum(per_sensor) / len(per_sensor),
            )
        )

    # --- centralised OPT pattern plus its Hungarian distance bound ----
    pattern = OptStripPattern(field, args.rc, args.rs)
    opt_positions = pattern.positions_for_count(args.sensors)
    _, opt_distance = minimum_distance_matching(
        initial_tuples, [p.as_tuple() for p in opt_positions]
    )
    rows.append(
        (
            "OPT",
            field.coverage_fraction(opt_positions, args.rs, 10.0),
            positions_are_connected(opt_positions, args.rc),
            opt_distance / args.sensors,
        )
    )

    # --- report --------------------------------------------------------
    print(
        f"field {FIELD_SIZE:.0f} m, N={args.sensors}, rc={args.rc:.0f} m, rs={args.rs:.0f} m\n"
    )
    print(f"{'scheme':<10s} {'coverage':>9s} {'connected':>10s} {'avg move (m)':>13s}")
    for name, coverage, connected, distance in rows:
        print(f"{name:<10s} {coverage:>8.1%} {str(connected):>10s} {distance:>13.1f}")
    print()
    for name, coverage, _, _ in rows:
        print(render_coverage_bar(name, coverage))


if __name__ == "__main__":
    main()
