#!/usr/bin/env python3
"""Quickstart: deploy a mobile sensor network with FLOOR and inspect it.

This example runs the FLOOR scheme on a small obstacle-free field, prints
the headline metrics (coverage, moving distance, protocol messages) and
renders the final layout as ASCII art.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    FloorScheme,
    SimulationConfig,
    SimulationEngine,
    World,
    obstacle_free_field,
)
from repro.metrics import summarize_sensor_distances
from repro.viz import render_coverage_bar, render_layout


def main() -> None:
    # 1. Describe the deployment: 60 sensors, rc = 60 m, rs = 40 m, starting
    #    clustered in the lower-left quadrant of a 500 x 500 m field.
    config = SimulationConfig(
        sensor_count=60,
        communication_range=60.0,
        sensing_range=40.0,
        duration=300.0,
        coverage_resolution=10.0,
        seed=7,
    )
    field = obstacle_free_field(500.0)

    # 2. Build the world and run the FLOOR scheme for the whole horizon.
    world = World.create(config, field)
    initial_coverage = world.coverage()
    engine = SimulationEngine(world, FloorScheme(), trace_every=50)
    result = engine.run()

    # 3. Report what happened.
    print("FLOOR deployment finished")
    print(f"  periods executed     : {result.periods_executed}")
    print(f"  initial coverage     : {initial_coverage:.1%}")
    print(f"  final coverage       : {result.final_coverage:.1%}")
    print(f"  network connected    : {result.connected}")
    print(f"  protocol messages    : {result.total_messages}")
    distances = summarize_sensor_distances(world.sensors)
    print(
        "  moving distance (m)  : "
        f"avg={distances.average:.1f}, median={distances.median:.1f}, max={distances.maximum:.1f}"
    )

    print()
    print("coverage over time:")
    for record in result.trace:
        print(f"  t={record.time:5.0f}s  coverage={record.coverage:.1%}")

    print()
    print(render_coverage_bar("initial", initial_coverage))
    print(render_coverage_bar("FLOOR", result.final_coverage))
    print()
    print("final layout ('*' sensor, 'o' covered, '.' uncovered, 'B' base station):")
    print(
        render_layout(
            world.field,
            world.positions(),
            config.sensing_range,
            width=60,
            base_station=world.base_station,
        )
    )


if __name__ == "__main__":
    main()
