#!/usr/bin/env python3
"""Message-overhead study: how FLOOR's traffic scales with the invitation TTL.

Table 1 of the paper counts the protocol messages FLOOR transmits during a
deployment, for different network sizes and invitation random-walk TTLs.
This example performs a reduced sweep and prints both the totals and the
per-type breakdown, showing that invitation walks dominate the traffic and
that the per-node load stays at a few messages per second.

Run with::

    python examples/message_overhead_study.py
"""

from __future__ import annotations

from repro import (
    FloorScheme,
    SimulationConfig,
    SimulationEngine,
    World,
    obstacle_free_field,
    two_obstacle_field,
)
from repro.network import MessageType

FIELD_SIZE = 500.0
SENSOR_COUNTS = (40, 70)
TTL_FRACTIONS = (0.1, 0.2, 0.4)
DURATION = 300.0


def run_once(sensor_count: int, ttl: int, with_obstacles: bool, seed: int = 9):
    config = SimulationConfig(
        sensor_count=sensor_count,
        communication_range=60.0,
        sensing_range=40.0,
        duration=DURATION,
        coverage_resolution=12.5,
        invitation_ttl=ttl,
        seed=seed,
    )
    field = two_obstacle_field(FIELD_SIZE) if with_obstacles else obstacle_free_field(FIELD_SIZE)
    world = World.create(config, field)
    result = SimulationEngine(world, FloorScheme(invitation_ttl=ttl)).run()
    return result, world


def main() -> None:
    for with_obstacles in (False, True):
        environment = "two-obstacle" if with_obstacles else "obstacle-free"
        print(f"=== {environment} environment ===")
        header = f"{'N':>5s} {'TTL':>5s} {'total msgs':>11s} {'msgs/node':>10s} {'msgs/node/s':>12s} {'coverage':>9s}"
        print(header)
        last_world = None
        for sensor_count in SENSOR_COUNTS:
            for fraction in TTL_FRACTIONS:
                ttl = max(1, int(round(fraction * sensor_count)))
                result, world = run_once(sensor_count, ttl, with_obstacles)
                last_world = world
                per_node = result.total_messages / sensor_count
                print(
                    f"{sensor_count:>5d} {ttl:>5d} {result.total_messages:>11d}"
                    f" {per_node:>10.0f} {per_node / DURATION:>12.2f}"
                    f" {result.final_coverage:>8.1%}"
                )
        print()
        if last_world is not None:
            print("message breakdown of the last run:")
            breakdown = sorted(
                last_world.stats.by_type().items(), key=lambda item: -item[1]
            )
            total = last_world.stats.total()
            for message_type, count in breakdown:
                share = 100.0 * count / total if total else 0.0
                print(f"  {message_type.value:<22s} {count:>9d}  ({share:4.1f}%)")
        print()

    print(
        "Invitation random walks dominate the overhead and grow linearly with "
        "the TTL, as in Table 1 of the paper; the per-node rate stays at a few "
        "short messages per second, well within typical sensor radio budgets."
    )


if __name__ == "__main__":
    main()
